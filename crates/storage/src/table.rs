//! On-flash tables: the columnar hidden image `TiH` and generic fixed-width
//! row tables (SKTs, materialised operator outputs).
//!
//! The hidden image of a table stores each hidden column in its own
//! contiguous segment, **sorted by tuple id** — so `MJoin` can merge hidden
//! values against sorted ID lists with a single sequential scan per column
//! (paper §4: "Ti.vlist, Ti.hlist and σVHTi.id are all sorted on idTi and
//! can be joined by a sequential scan of each list and a simple merge").
//! Row tables hold multi-ID records in id order (SKTs, `SJoin` results).

use crate::error::StorageError;
use crate::row::RowLayout;
use crate::value::{ColumnType, Value};
use crate::{Id, Result};
use ghostdb_flash::{FlashDevice, Segment, SegmentAllocator};
use ghostdb_token::{RamArena, RamBuffer};

/// One hidden column on flash, sorted by tuple id.
#[derive(Debug, Clone)]
pub struct HiddenColumn {
    /// Column name.
    pub name: String,
    /// Declared type (fixed width).
    pub ty: ColumnType,
    segment: Segment,
    rows: u64,
}

impl HiddenColumn {
    /// Bulk-load a column from a value generator (load path; charges
    /// sequential page writes, exactly what burning the key would cost).
    pub fn bulk_load_with(
        dev: &mut FlashDevice,
        alloc: &mut SegmentAllocator,
        name: &str,
        ty: ColumnType,
        rows: u64,
        mut gen: impl FnMut(Id) -> Value,
    ) -> Result<Self> {
        let width = ty.width();
        let page_size = dev.page_size();
        let vals_per_page = (page_size / width) as u64;
        assert!(vals_per_page > 0, "column value wider than a page");
        let pages = rows.div_ceil(vals_per_page).max(1);
        let segment = alloc.alloc(pages)?;
        let mut image = vec![0u8; page_size];
        let mut row = 0u64;
        let mut page = 0u64;
        while row < rows {
            let on_page = vals_per_page.min(rows - row) as usize;
            for i in 0..on_page {
                gen((row + i as u64) as Id)
                    .encode(&ty, &mut image[i * width..(i + 1) * width])
                    .map_err(|_| StorageError::TypeMismatch {
                        column: name.into(),
                        expected: "declared column type",
                    })?;
            }
            dev.write(segment.lpn(page)?, &image[..on_page * width])?;
            row += on_page as u64;
            page += 1;
        }
        Ok(HiddenColumn {
            name: name.into(),
            ty,
            segment,
            rows,
        })
    }

    /// Bulk-load a column from host values.
    pub fn bulk_load(
        dev: &mut FlashDevice,
        alloc: &mut SegmentAllocator,
        name: &str,
        ty: ColumnType,
        values: &[Value],
    ) -> Result<Self> {
        HiddenColumn::bulk_load_with(dev, alloc, name, ty, values.len() as u64, |r| {
            values[r as usize].clone()
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Bytes occupied (for size accounting).
    pub fn bytes(&self) -> u64 {
        self.rows * self.ty.width() as u64
    }

    fn locate(&self, row: u64, page_size: usize) -> (u64, usize) {
        let width = self.ty.width();
        let vpp = (page_size / width) as u64;
        (row / vpp, (row % vpp) as usize * width)
    }

    /// Random access to one value (charges a page load + `width` bytes).
    pub fn get(&self, dev: &mut FlashDevice, row: Id) -> Result<Value> {
        if row as u64 >= self.rows {
            return Err(StorageError::RowOutOfRange {
                row: row as u64,
                rows: self.rows,
            });
        }
        let (page, off) = self.locate(row as u64, dev.page_size());
        let mut buf = vec![0u8; self.ty.width()];
        dev.read(self.segment.lpn(page)?, off, &mut buf)?;
        Ok(Value::decode(&self.ty, &buf))
    }

    /// Open a sequential scan (one RAM buffer).
    pub fn scan(&self, ram: &RamArena, page_size: usize) -> Result<ColumnScan> {
        Ok(ColumnScan {
            column: self.clone(),
            buf: ram.alloc()?,
            buffered_page: None,
            pos: 0,
            page_size,
        })
    }

    /// Scan positioned to deliver values for an *ascending* sequence of row
    /// ids (merge-style access: each page read at most once).
    pub fn selective_scan(&self, ram: &RamArena, page_size: usize) -> Result<ColumnScan> {
        self.scan(ram, page_size)
    }
}

/// Sequential (or ascending-skip) scan over a hidden column.
#[derive(Debug)]
pub struct ColumnScan {
    column: HiddenColumn,
    buf: RamBuffer,
    buffered_page: Option<u64>,
    pos: u64,
    page_size: usize,
}

impl ColumnScan {
    /// Value at row `row`, which must be ≥ any previously requested row.
    /// Pages are loaded at most once each (sorted merge access pattern).
    pub fn value_at(&mut self, dev: &mut FlashDevice, row: Id) -> Result<Value> {
        if (row as u64) < self.pos {
            return Err(StorageError::Corrupt(format!(
                "ColumnScan going backwards: {row} after {}",
                self.pos
            )));
        }
        self.pos = row as u64;
        if row as u64 >= self.column.rows {
            return Err(StorageError::RowOutOfRange {
                row: row as u64,
                rows: self.column.rows,
            });
        }
        let (page, off) = self.column.locate(row as u64, self.page_size);
        if self.buffered_page != Some(page) {
            let width = self.column.ty.width();
            let vpp = self.page_size / width;
            let rows_on_page = ((self.column.rows - page * vpp as u64) as usize).min(vpp);
            let used = rows_on_page * width;
            dev.read(self.column.segment.lpn(page)?, 0, &mut self.buf[..used])?;
            self.buffered_page = Some(page);
        }
        let width = self.column.ty.width();
        Ok(Value::decode(&self.column.ty, &self.buf[off..off + width]))
    }

    /// Next value in sequence (plain full scan).
    pub fn next_value(&mut self, dev: &mut FlashDevice) -> Result<Option<Value>> {
        if self.pos >= self.column.rows {
            return Ok(None);
        }
        let v = self.value_at(dev, self.pos as Id)?;
        self.pos += 1;
        Ok(Some(v))
    }
}

/// The hidden image `TiH`: all hidden columns of one table.
#[derive(Debug, Clone, Default)]
pub struct HiddenImage {
    /// Hidden columns, in schema order.
    pub columns: Vec<HiddenColumn>,
    /// Table cardinality.
    pub rows: u64,
}

impl HiddenImage {
    /// Find a column by name.
    pub fn column(&self, name: &str) -> Result<&HiddenColumn> {
        self.columns
            .iter()
            .find(|c| c.name == name)
            .ok_or_else(|| StorageError::Unknown(name.into()))
    }

    /// Total bytes of the image.
    pub fn bytes(&self) -> u64 {
        self.columns.iter().map(|c| c.bytes()).sum()
    }
}

/// A fixed-width row table on flash (SKTs, materialised intermediates).
/// Rows are implicitly numbered 0..rows in storage order.
#[derive(Debug, Clone)]
pub struct FlashTable {
    /// Row layout.
    pub layout: RowLayout,
    segment: Segment,
    rows: u64,
}

impl FlashTable {
    /// Number of rows.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Pages occupied.
    pub fn pages(&self, page_size: usize) -> u64 {
        self.layout.pages_for(self.rows, page_size)
    }

    /// Bytes of live data.
    pub fn bytes(&self) -> u64 {
        self.rows * self.layout.size() as u64
    }

    /// Backing segment (to free temporaries).
    pub fn segment(&self) -> Segment {
        self.segment
    }

    /// Rows the backing segment can hold (append headroom).
    pub fn capacity(&self, page_size: usize) -> u64 {
        self.segment.pages() * self.layout.rows_per_page(page_size) as u64
    }

    /// Overwrite row `row` in place. At the FTL this is a read-modify-write
    /// of the row's page (out of place physically, in place logically).
    pub fn write_row(&mut self, dev: &mut FlashDevice, row: u64, data: &[u8]) -> Result<()> {
        if row >= self.rows {
            return Err(StorageError::RowOutOfRange {
                row,
                rows: self.rows,
            });
        }
        debug_assert_eq!(data.len(), self.layout.size());
        let (page, off) = self.layout.locate(row, dev.page_size());
        dev.write_at(self.segment.lpn(page)?, off, data)?;
        Ok(())
    }

    /// Append one row into the segment's remaining capacity. Fails with
    /// `RowOutOfRange` when the segment is full — the caller decides
    /// whether to rebuild into a larger segment.
    pub fn append_row(&mut self, dev: &mut FlashDevice, data: &[u8]) -> Result<()> {
        let cap = self.capacity(dev.page_size());
        if self.rows >= cap {
            return Err(StorageError::RowOutOfRange {
                row: self.rows,
                rows: cap,
            });
        }
        debug_assert_eq!(data.len(), self.layout.size());
        let (page, off) = self.layout.locate(self.rows, dev.page_size());
        dev.write_at(self.segment.lpn(page)?, off, data)?;
        self.rows += 1;
        Ok(())
    }

    /// Random access: read row `row` into `out` (one page load, row bytes).
    pub fn read_row(&self, dev: &mut FlashDevice, row: u64, out: &mut [u8]) -> Result<()> {
        if row >= self.rows {
            return Err(StorageError::RowOutOfRange {
                row,
                rows: self.rows,
            });
        }
        let (page, off) = self.layout.locate(row, dev.page_size());
        dev.read(self.segment.lpn(page)?, off, &mut out[..self.layout.size()])?;
        Ok(())
    }

    /// Open a streaming reader (one RAM buffer).
    pub fn reader(&self, ram: &RamArena, page_size: usize) -> Result<FlashTableReader> {
        Ok(FlashTableReader {
            table: self.clone(),
            buf: ram.alloc()?,
            buffered_page: None,
            pos: 0,
            page_size,
        })
    }

    /// Bulk-load `n_rows` rows produced by a fill callback (build path:
    /// assembles page images host-side, charges sequential page writes).
    pub fn bulk_load_with(
        dev: &mut FlashDevice,
        alloc: &mut SegmentAllocator,
        layout: RowLayout,
        n_rows: u64,
        fill: impl FnMut(u64, &mut [u8]),
    ) -> Result<FlashTable> {
        FlashTable::bulk_load_with_capacity(dev, alloc, layout, n_rows, n_rows, fill)
    }

    /// Like [`FlashTable::bulk_load_with`], but sizes the backing segment
    /// for `capacity_rows ≥ n_rows`, leaving headroom for
    /// [`FlashTable::append_row`].
    pub fn bulk_load_with_capacity(
        dev: &mut FlashDevice,
        alloc: &mut SegmentAllocator,
        layout: RowLayout,
        n_rows: u64,
        capacity_rows: u64,
        mut fill: impl FnMut(u64, &mut [u8]),
    ) -> Result<FlashTable> {
        assert!(capacity_rows >= n_rows, "capacity below initial rows");
        let page_size = dev.page_size();
        let rpp = layout.rows_per_page(page_size) as u64;
        let pages = layout.pages_for(capacity_rows, page_size);
        let segment = alloc.alloc(pages)?;
        let size = layout.size();
        let mut image = vec![0u8; page_size];
        let mut row = 0u64;
        let mut page = 0u64;
        while row < n_rows {
            let on_page = rpp.min(n_rows - row);
            for i in 0..on_page {
                fill(
                    row + i,
                    &mut image[i as usize * size..(i as usize + 1) * size],
                );
            }
            dev.write(segment.lpn(page)?, &image[..on_page as usize * size])?;
            row += on_page;
            page += 1;
        }
        Ok(FlashTable {
            layout,
            segment,
            rows: n_rows,
        })
    }

    /// Bulk-load from host-side rows (build path, sequential writes).
    pub fn bulk_load<'a>(
        dev: &mut FlashDevice,
        alloc: &mut SegmentAllocator,
        layout: RowLayout,
        rows: impl ExactSizeIterator<Item = &'a [u8]>,
    ) -> Result<FlashTable> {
        let n = rows.len() as u64;
        let page_size = dev.page_size();
        let rpp = layout.rows_per_page(page_size);
        let pages = layout.pages_for(n, page_size);
        let segment = alloc.alloc(pages)?;
        let mut image = vec![0u8; page_size];
        let mut in_page = 0usize;
        let mut page = 0u64;
        let size = layout.size();
        for row in rows {
            debug_assert_eq!(row.len(), size);
            image[in_page * size..(in_page + 1) * size].copy_from_slice(row);
            in_page += 1;
            if in_page == rpp {
                dev.write(segment.lpn(page)?, &image[..in_page * size])?;
                page += 1;
                in_page = 0;
            }
        }
        if in_page > 0 {
            dev.write(segment.lpn(page)?, &image[..in_page * size])?;
        }
        Ok(FlashTable {
            layout,
            segment,
            rows: n,
        })
    }
}

/// Streaming writer for a new row table (one RAM buffer, sequential pages).
#[derive(Debug)]
pub struct FlashTableWriter {
    layout: RowLayout,
    segment: Segment,
    buf: RamBuffer,
    in_page: usize,
    next_page: u64,
    rows: u64,
    page_size: usize,
}

impl FlashTableWriter {
    /// Create a writer for up to `max_rows` rows.
    pub fn create(
        alloc: &mut SegmentAllocator,
        ram: &RamArena,
        layout: RowLayout,
        max_rows: u64,
        page_size: usize,
    ) -> Result<Self> {
        let pages = layout.pages_for(max_rows, page_size);
        let segment = alloc.alloc(pages)?;
        Ok(FlashTableWriter {
            layout,
            segment,
            buf: ram.alloc()?,
            in_page: 0,
            next_page: 0,
            rows: 0,
            page_size,
        })
    }

    /// Append one row.
    pub fn push(&mut self, dev: &mut FlashDevice, row: &[u8]) -> Result<()> {
        let size = self.layout.size();
        debug_assert_eq!(row.len(), size);
        let rpp = self.layout.rows_per_page(self.page_size);
        if self.in_page == rpp {
            self.flush(dev)?;
        }
        self.buf[self.in_page * size..(self.in_page + 1) * size].copy_from_slice(row);
        self.in_page += 1;
        self.rows += 1;
        Ok(())
    }

    fn flush(&mut self, dev: &mut FlashDevice) -> Result<()> {
        if self.in_page == 0 {
            return Ok(());
        }
        let used = self.in_page * self.layout.size();
        dev.write(self.segment.lpn(self.next_page)?, &self.buf[..used])?;
        self.next_page += 1;
        self.in_page = 0;
        Ok(())
    }

    /// Finish and return the table.
    pub fn finish(mut self, dev: &mut FlashDevice) -> Result<FlashTable> {
        self.flush(dev)?;
        Ok(FlashTable {
            layout: self.layout.clone(),
            segment: self.segment,
            rows: self.rows,
        })
    }
}

/// Streaming reader over a row table, with ascending random skip support
/// (key semi-join access pattern: each needed page loaded once).
#[derive(Debug)]
pub struct FlashTableReader {
    table: FlashTable,
    buf: RamBuffer,
    buffered_page: Option<u64>,
    pos: u64,
    page_size: usize,
}

impl FlashTableReader {
    /// Total rows.
    pub fn rows(&self) -> u64 {
        self.table.rows
    }

    /// Read row `row` (must be ≥ previously requested rows) and return a
    /// view of it. Pages are each loaded at most once thanks to ascending
    /// access.
    pub fn row_at(&mut self, dev: &mut FlashDevice, row: u64) -> Result<&[u8]> {
        if row >= self.table.rows {
            return Err(StorageError::RowOutOfRange {
                row,
                rows: self.table.rows,
            });
        }
        if row < self.pos {
            return Err(StorageError::Corrupt(format!(
                "FlashTableReader going backwards: {row} after {}",
                self.pos
            )));
        }
        self.pos = row;
        let (page, off) = self.table.layout.locate(row, self.page_size);
        if self.buffered_page != Some(page) {
            let rpp = self.table.layout.rows_per_page(self.page_size) as u64;
            let rows_on_page = ((self.table.rows - page * rpp) as usize).min(rpp as usize);
            let used = rows_on_page * self.table.layout.size();
            dev.read(self.table.segment.lpn(page)?, 0, &mut self.buf[..used])?;
            self.buffered_page = Some(page);
        }
        Ok(&self.buf[off..off + self.table.layout.size()])
    }

    /// Next row in sequence, or `None` at the end.
    pub fn next_row(&mut self, dev: &mut FlashDevice) -> Result<Option<&[u8]>> {
        if self.pos >= self.table.rows {
            return Ok(None);
        }
        let row = self.pos;
        self.pos += 1;
        // Re-borrow via row_at's logic without the monotonicity bump.
        let (page, off) = self.table.layout.locate(row, self.page_size);
        if self.buffered_page != Some(page) {
            let rpp = self.table.layout.rows_per_page(self.page_size) as u64;
            let rows_on_page = ((self.table.rows - page * rpp) as usize).min(rpp as usize);
            let used = rows_on_page * self.table.layout.size();
            dev.read(self.table.segment.lpn(page)?, 0, &mut self.buf[..used])?;
            self.buffered_page = Some(page);
        }
        Ok(Some(&self.buf[off..off + self.table.layout.size()]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghostdb_flash::{FlashGeometry, FlashTiming};

    fn setup() -> (FlashDevice, SegmentAllocator, RamArena) {
        let dev = FlashDevice::new(
            FlashGeometry::for_capacity(8 * 1024 * 1024),
            FlashTiming::default(),
        );
        let alloc = SegmentAllocator::new(dev.logical_pages());
        let ram = RamArena::paper_default();
        (dev, alloc, ram)
    }

    #[test]
    fn hidden_column_roundtrip() {
        let (mut dev, mut alloc, ram) = setup();
        let values: Vec<Value> = (0..5000).map(|i| Value::Int(i * 7)).collect();
        let col = HiddenColumn::bulk_load(
            &mut dev,
            &mut alloc,
            "h1",
            ColumnType::Int { width: 8 },
            &values,
        )
        .unwrap();
        assert_eq!(col.rows(), 5000);
        assert_eq!(col.get(&mut dev, 4999).unwrap(), Value::Int(4999 * 7));
        assert_eq!(col.get(&mut dev, 0).unwrap(), Value::Int(0));
        assert!(col.get(&mut dev, 5000).is_err());
        let mut scan = col.scan(&ram, dev.page_size()).unwrap();
        for i in 0..5000 {
            assert_eq!(
                scan.next_value(&mut dev).unwrap(),
                Some(Value::Int(i * 7)),
                "row {i}"
            );
        }
        assert_eq!(scan.next_value(&mut dev).unwrap(), None);
    }

    #[test]
    fn selective_scan_loads_each_page_once() {
        let (mut dev, mut alloc, ram) = setup();
        let values: Vec<Value> = (0..2048).map(Value::Int).collect();
        let col = HiddenColumn::bulk_load(
            &mut dev,
            &mut alloc,
            "h",
            ColumnType::Int { width: 8 },
            &values,
        )
        .unwrap();
        let snap = dev.snapshot();
        let mut scan = col.selective_scan(&ram, dev.page_size()).unwrap();
        // 8-byte vals, 256 per page; probe two rows per page.
        for row in (0..2048u32).step_by(128) {
            let v = scan.value_at(&mut dev, row).unwrap();
            assert_eq!(v, Value::Int(row as i64));
        }
        let d = dev.stats_since(&snap);
        assert_eq!(d.pages_read, 8, "each of the 8 pages loaded exactly once");
        // Backwards access is rejected.
        assert!(scan.value_at(&mut dev, 0).is_err());
    }

    #[test]
    fn flash_table_writer_reader_roundtrip() {
        let (mut dev, mut alloc, ram) = setup();
        let layout = RowLayout::ids(3);
        let mut w =
            FlashTableWriter::create(&mut alloc, &ram, layout.clone(), 1000, dev.page_size())
                .unwrap();
        for i in 0..1000u32 {
            let mut row = vec![0u8; layout.size()];
            layout.put_id(&mut row, 0, i);
            layout.put_id(&mut row, 1, i * 2);
            layout.put_id(&mut row, 2, i * 3);
            w.push(&mut dev, &row).unwrap();
        }
        let table = w.finish(&mut dev).unwrap();
        assert_eq!(table.rows(), 1000);
        let mut r = table.reader(&ram, dev.page_size()).unwrap();
        let mut i = 0u32;
        while let Some(row) = r.next_row(&mut dev).unwrap() {
            assert_eq!(layout.get_id(row, 1), i * 2);
            i += 1;
        }
        assert_eq!(i, 1000);
    }

    #[test]
    fn flash_table_skip_access() {
        let (mut dev, mut alloc, ram) = setup();
        let layout = RowLayout::ids(2);
        let rows: Vec<Vec<u8>> = (0..500u32)
            .map(|i| {
                let mut row = vec![0u8; 8];
                layout.put_id(&mut row, 0, i);
                layout.put_id(&mut row, 1, 1000 + i);
                row
            })
            .collect();
        let table = FlashTable::bulk_load(
            &mut dev,
            &mut alloc,
            layout.clone(),
            rows.iter().map(|r| r.as_slice()),
        )
        .unwrap();
        let mut r = table.reader(&ram, dev.page_size()).unwrap();
        for probe in [3u64, 100, 101, 499] {
            let row = r.row_at(&mut dev, probe).unwrap();
            assert_eq!(layout.get_id(row, 1) as u64, 1000 + probe);
        }
        assert!(r.row_at(&mut dev, 2).is_err(), "backwards rejected");
        assert!(r.row_at(&mut dev, 500).is_err(), "out of range rejected");
    }

    #[test]
    fn random_row_read() {
        let (mut dev, mut alloc, _ram) = setup();
        let layout = RowLayout::ids(1);
        let rows: Vec<Vec<u8>> = (0..300u32)
            .map(|i| (i * 5).to_le_bytes().to_vec())
            .collect();
        let table = FlashTable::bulk_load(
            &mut dev,
            &mut alloc,
            layout.clone(),
            rows.iter().map(|r| r.as_slice()),
        )
        .unwrap();
        let mut out = vec![0u8; 4];
        table.read_row(&mut dev, 123, &mut out).unwrap();
        assert_eq!(layout.get_id(&out, 0), 123 * 5);
    }

    #[test]
    fn hidden_image_lookup() {
        let (mut dev, mut alloc, _ram) = setup();
        let c1 = HiddenColumn::bulk_load(
            &mut dev,
            &mut alloc,
            "h1",
            ColumnType::int(),
            &[Value::Int(1)],
        )
        .unwrap();
        let image = HiddenImage {
            columns: vec![c1],
            rows: 1,
        };
        assert!(image.column("h1").is_ok());
        assert!(image.column("nope").is_err());
        assert_eq!(image.bytes(), 4);
    }
}
