//! Schema model: per-column visibility and the tree-structured database of
//! paper §3.
//!
//! §2.1: "Specifying which data is Visible and which is Hidden occurs at the
//! schema definition stage. All data is by default Visible. In the create
//! table statement, either entire tables or entire columns may be declared
//! Hidden." The declaration vertically partitions each table: visible
//! columns (plus the replicated id) go to the Untrusted PC, hidden columns
//! (plus the id) to the token.
//!
//! §3: schemas are trees — a **root table** `T0` (the largest, central
//! table) holds foreign keys to its children, which hold foreign keys to
//! their children, etc. `ancestors` and `descendants` drive SKT layout and
//! climbing-index levels.

use crate::error::StorageError;
use crate::value::ColumnType;
use crate::Result;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Whether a column lives on the Untrusted PC or the Secure token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Visibility {
    /// Public data, stored on the Untrusted PC.
    Visible,
    /// Sensitive data, stored only on the token. Never leaves it.
    Hidden,
}

/// A column declaration. The surrogate `id` is implicit in every table and
/// replicated on both sides (§2.1), so it never appears here.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Column {
    /// Column name, unique within its table.
    pub name: String,
    /// Declared type and width.
    pub ty: ColumnType,
    /// Visible or Hidden.
    pub visibility: Visibility,
}

impl Column {
    /// A visible column.
    pub fn visible(name: &str, ty: ColumnType) -> Self {
        Column {
            name: name.into(),
            ty,
            visibility: Visibility::Visible,
        }
    }

    /// A hidden column.
    pub fn hidden(name: &str, ty: ColumnType) -> Self {
        Column {
            name: name.into(),
            ty,
            visibility: Visibility::Hidden,
        }
    }
}

/// A foreign-key edge: `column` of this table references `references.id`.
/// The design guideline of §2.1 hides all foreign keys; we allow visible
/// ones too (footnote 5 discusses that relaxation) but the paper's
/// experiments keep them hidden.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForeignKey {
    /// Name of the referencing column (must be an Int{4} column).
    pub column: String,
    /// Name of the referenced table.
    pub references: String,
}

/// A table definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableDef {
    /// Table name.
    pub name: String,
    /// Non-key columns (the id is implicit).
    pub columns: Vec<Column>,
    /// Foreign-key edges to child tables.
    pub foreign_keys: Vec<ForeignKey>,
}

impl TableDef {
    /// New table with no columns.
    pub fn new(name: &str) -> Self {
        TableDef {
            name: name.into(),
            columns: Vec::new(),
            foreign_keys: Vec::new(),
        }
    }

    /// Builder: add a column.
    pub fn with_column(mut self, column: Column) -> Self {
        self.columns.push(column);
        self
    }

    /// Builder: add a hidden foreign key to `references` named `column`.
    pub fn with_fk(mut self, column: &str, references: &str) -> Self {
        self.columns.push(Column::hidden(column, ColumnType::int()));
        self.foreign_keys.push(ForeignKey {
            column: column.into(),
            references: references.into(),
        });
        self
    }

    /// Find a column by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Columns with the given visibility, excluding foreign keys when
    /// `include_fks` is false.
    pub fn columns_with(&self, visibility: Visibility, include_fks: bool) -> Vec<&Column> {
        self.columns
            .iter()
            .filter(|c| c.visibility == visibility)
            .filter(|c| include_fks || !self.is_fk(&c.name))
            .collect()
    }

    /// True if `column` is a foreign key.
    pub fn is_fk(&self, column: &str) -> bool {
        self.foreign_keys.iter().any(|fk| fk.column == column)
    }

    /// Raw tuple width in bytes including the 4-byte id (for size models).
    pub fn raw_tuple_bytes(&self) -> u64 {
        4 + self
            .columns
            .iter()
            .map(|c| c.ty.width() as u64)
            .sum::<u64>()
    }
}

/// Index of a table within a [`SchemaTree`].
pub type TableId = usize;

/// A validated tree-structured schema.
#[derive(Debug, Clone)]
pub struct SchemaTree {
    defs: Vec<TableDef>,
    by_name: BTreeMap<String, TableId>,
    parent: Vec<Option<TableId>>,
    children: Vec<Vec<TableId>>,
    root: TableId,
}

impl SchemaTree {
    /// Validate a set of table definitions as a tree and build the schema.
    ///
    /// Rules (§3): exactly one root (a table referenced by no foreign key);
    /// every other table is referenced by exactly one parent; foreign keys
    /// reference existing tables; edges form a single connected tree.
    pub fn new(defs: Vec<TableDef>) -> Result<Self> {
        if defs.is_empty() {
            return Err(StorageError::Schema("empty schema".into()));
        }
        let mut by_name = BTreeMap::new();
        for (i, def) in defs.iter().enumerate() {
            if by_name.insert(def.name.clone(), i).is_some() {
                return Err(StorageError::Schema(format!(
                    "duplicate table {}",
                    def.name
                )));
            }
            let mut col_names = std::collections::BTreeSet::new();
            for c in &def.columns {
                c.ty.validate();
                if !col_names.insert(&c.name) {
                    return Err(StorageError::Schema(format!(
                        "duplicate column {}.{}",
                        def.name, c.name
                    )));
                }
            }
        }
        let mut parent: Vec<Option<TableId>> = vec![None; defs.len()];
        let mut children: Vec<Vec<TableId>> = vec![Vec::new(); defs.len()];
        for (i, def) in defs.iter().enumerate() {
            for fk in &def.foreign_keys {
                let target = *by_name.get(&fk.references).ok_or_else(|| {
                    StorageError::Schema(format!(
                        "{}.{} references unknown table {}",
                        def.name, fk.column, fk.references
                    ))
                })?;
                if def.column(&fk.column).is_none() {
                    return Err(StorageError::Schema(format!(
                        "foreign key column {}.{} not declared",
                        def.name, fk.column
                    )));
                }
                if parent[target].is_some() {
                    return Err(StorageError::Schema(format!(
                        "table {} referenced by more than one parent (not a tree)",
                        fk.references
                    )));
                }
                if target == i {
                    return Err(StorageError::Schema(format!(
                        "table {} references itself",
                        def.name
                    )));
                }
                parent[target] = Some(i);
                children[i].push(target);
            }
        }
        let roots: Vec<TableId> = (0..defs.len()).filter(|i| parent[*i].is_none()).collect();
        if roots.len() != 1 {
            return Err(StorageError::Schema(format!(
                "schema must have exactly one root table, found {}",
                roots.len()
            )));
        }
        let root = roots[0];
        // Connectivity + acyclicity: DFS from the root must reach everyone.
        let mut seen = vec![false; defs.len()];
        let mut stack = vec![root];
        while let Some(t) = stack.pop() {
            if seen[t] {
                return Err(StorageError::Schema("cycle in schema".into()));
            }
            seen[t] = true;
            stack.extend(&children[t]);
        }
        if !seen.iter().all(|s| *s) {
            return Err(StorageError::Schema(
                "schema is not connected (unreachable tables)".into(),
            ));
        }
        Ok(SchemaTree {
            defs,
            by_name,
            parent,
            children,
            root,
        })
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// True if the schema is empty (never: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// The root table (`T0` in the paper).
    pub fn root(&self) -> TableId {
        self.root
    }

    /// Table definition.
    pub fn def(&self, t: TableId) -> &TableDef {
        &self.defs[t]
    }

    /// Resolve a table name.
    pub fn table_id(&self, name: &str) -> Result<TableId> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| StorageError::Unknown(name.into()))
    }

    /// All table ids.
    pub fn tables(&self) -> impl Iterator<Item = TableId> + '_ {
        0..self.defs.len()
    }

    /// Parent table, if any.
    pub fn parent(&self, t: TableId) -> Option<TableId> {
        self.parent[t]
    }

    /// Direct children (tables this table's foreign keys reference), in
    /// declaration order.
    pub fn children(&self, t: TableId) -> &[TableId] {
        &self.children[t]
    }

    /// Ancestors from the immediate parent up to the root (paper: the
    /// climbing targets of an index on `t`, beyond `t` itself).
    pub fn ancestors(&self, t: TableId) -> Vec<TableId> {
        let mut out = Vec::new();
        let mut cur = self.parent[t];
        while let Some(p) = cur {
            out.push(p);
            cur = self.parent[p];
        }
        out
    }

    /// All descendants of `t` in DFS pre-order (the SKT column layout).
    pub fn descendants(&self, t: TableId) -> Vec<TableId> {
        let mut out = Vec::new();
        let mut stack: Vec<TableId> = self.children[t].iter().rev().copied().collect();
        while let Some(c) = stack.pop() {
            out.push(c);
            for gc in self.children[c].iter().rev() {
                stack.push(*gc);
            }
        }
        out
    }

    /// True if `anc` is `t` or an ancestor of `t`.
    pub fn is_ancestor_or_self(&self, anc: TableId, t: TableId) -> bool {
        if anc == t {
            return true;
        }
        self.ancestors(t).contains(&anc)
    }

    /// The foreign-key column of `parent(t)` that references `t`.
    pub fn fk_into(&self, t: TableId) -> Option<(&TableDef, &ForeignKey)> {
        let p = self.parent[t]?;
        let def = &self.defs[p];
        def.foreign_keys
            .iter()
            .find(|fk| self.by_name[&fk.references] == t)
            .map(|fk| (def, fk))
    }
}

/// The paper's running synthetic schema (Figure 3 / §6.2): a root `T0`
/// referencing `T1` and `T2`; `T1` referencing `T11` and `T12`. Each table
/// gets `n_visible` visible and `n_hidden` hidden 10-byte attributes named
/// `v1..` and `h1..`.
pub fn paper_synthetic_schema(n_visible: usize, n_hidden: usize) -> SchemaTree {
    let attr = |def: TableDef, n_visible: usize, n_hidden: usize| -> TableDef {
        let mut def = def;
        for i in 1..=n_visible {
            def = def.with_column(Column::visible(&format!("v{i}"), ColumnType::char(10)));
        }
        for i in 1..=n_hidden {
            def = def.hidden_attr(i);
        }
        def
    };
    // Small helper via extension trait pattern kept local for clarity.
    trait HiddenAttr {
        fn hidden_attr(self, i: usize) -> Self;
    }
    impl HiddenAttr for TableDef {
        fn hidden_attr(self, i: usize) -> Self {
            self.with_column(Column::hidden(&format!("h{i}"), ColumnType::char(10)))
        }
    }
    let t0 = attr(
        TableDef::new("T0")
            .with_fk("fk1", "T1")
            .with_fk("fk2", "T2"),
        n_visible,
        n_hidden,
    );
    let t1 = attr(
        TableDef::new("T1")
            .with_fk("fk11", "T11")
            .with_fk("fk12", "T12"),
        n_visible,
        n_hidden,
    );
    let t2 = attr(TableDef::new("T2"), n_visible, n_hidden);
    let t11 = attr(TableDef::new("T11"), n_visible, n_hidden);
    let t12 = attr(TableDef::new("T12"), n_visible, n_hidden);
    SchemaTree::new(vec![t0, t1, t2, t11, t12]).expect("paper schema is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_schema_tree_shape() {
        let s = paper_synthetic_schema(5, 5);
        let t0 = s.table_id("T0").unwrap();
        let t1 = s.table_id("T1").unwrap();
        let t12 = s.table_id("T12").unwrap();
        assert_eq!(s.root(), t0);
        assert_eq!(s.parent(t1), Some(t0));
        assert_eq!(s.parent(t12), Some(t1));
        assert_eq!(s.ancestors(t12), vec![t1, t0]);
        let desc: Vec<&str> = s
            .descendants(t0)
            .into_iter()
            .map(|t| s.def(t).name.as_str())
            .collect();
        assert_eq!(desc, vec!["T1", "T11", "T12", "T2"]);
        assert!(s.is_ancestor_or_self(t0, t12));
        assert!(!s.is_ancestor_or_self(t12, t1));
    }

    #[test]
    fn fk_into_finds_referencing_column() {
        let s = paper_synthetic_schema(1, 1);
        let t12 = s.table_id("T12").unwrap();
        let (def, fk) = s.fk_into(t12).unwrap();
        assert_eq!(def.name, "T1");
        assert_eq!(fk.column, "fk12");
    }

    #[test]
    fn rejects_two_parents() {
        let a = TableDef::new("A").with_fk("fk_c", "C");
        let b = TableDef::new("B").with_fk("fk_c2", "C");
        let c = TableDef::new("C");
        // Two roots AND C referenced twice: both errors; parent check fires.
        let err = SchemaTree::new(vec![a, b, c]).unwrap_err();
        assert!(matches!(err, StorageError::Schema(_)));
    }

    #[test]
    fn rejects_missing_reference() {
        let a = TableDef::new("A").with_fk("fk_x", "X");
        assert!(SchemaTree::new(vec![a]).is_err());
    }

    #[test]
    fn rejects_multiple_roots() {
        let a = TableDef::new("A");
        let b = TableDef::new("B");
        assert!(SchemaTree::new(vec![a, b]).is_err());
    }

    #[test]
    fn rejects_self_reference() {
        let a = TableDef::new("A").with_fk("fk_a", "A");
        assert!(SchemaTree::new(vec![a]).is_err());
    }

    #[test]
    fn visibility_partitions() {
        let s = paper_synthetic_schema(2, 3);
        let t0 = s.def(s.table_id("T0").unwrap());
        assert_eq!(t0.columns_with(Visibility::Visible, true).len(), 2);
        // 3 hidden attrs + 2 hidden fks.
        assert_eq!(t0.columns_with(Visibility::Hidden, true).len(), 5);
        assert_eq!(t0.columns_with(Visibility::Hidden, false).len(), 3);
        assert!(t0.is_fk("fk1"));
        assert!(!t0.is_fk("h1"));
    }

    #[test]
    fn raw_tuple_bytes_counts_everything() {
        let s = paper_synthetic_schema(5, 5);
        let t0 = s.def(s.table_id("T0").unwrap());
        // id(4) + 2 fks(4 each) + 10 attrs of 10 bytes.
        assert_eq!(t0.raw_tuple_bytes(), 4 + 8 + 100);
    }
}
