//! Fixed-width values and column types.
//!
//! GhostDB schemas declare explicit byte widths (§6.2 lists e.g.
//! `idVH(4)`, `specialtyV(20)`, `ageV(2)`, `bodymassindexH(4)`), and all
//! record layouts are fixed-width so tuple access by id is pure arithmetic.
//! Values also encode to **order-preserving u64 keys** for the B+-tree layer
//! of climbing indexes.

use crate::error::StorageError;
use crate::Result;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Declared type of a column, with its on-flash width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ColumnType {
    /// Signed integer stored in `width` bytes (1..=8), little-endian,
    /// two's-complement truncated.
    Int {
        /// Bytes of storage (paper: `age` is 2 bytes, ids are 4).
        width: u8,
    },
    /// IEEE-754 double stored in 8 bytes (paper: `bodymassindex float(4)`
    /// uses 4; we accept a width of 4 or 8 and store f32/f64 accordingly).
    Float {
        /// Bytes of storage: 4 or 8.
        width: u8,
    },
    /// Fixed-width character data, zero-padded (paper: `char(200)`).
    Char {
        /// Bytes of storage.
        width: u16,
    },
}

impl ColumnType {
    /// Convenience: 4-byte integer.
    pub const fn int() -> Self {
        ColumnType::Int { width: 4 }
    }

    /// Convenience: `char(n)`.
    pub const fn char(width: u16) -> Self {
        ColumnType::Char { width }
    }

    /// Convenience: 4-byte float (the paper's `float(4)`).
    pub const fn float() -> Self {
        ColumnType::Float { width: 4 }
    }

    /// Encoded size in bytes.
    pub fn width(&self) -> usize {
        match self {
            ColumnType::Int { width } => *width as usize,
            ColumnType::Float { width } => *width as usize,
            ColumnType::Char { width } => *width as usize,
        }
    }

    /// Check invariants (panics on nonsense widths; schema construction is
    /// programmer-facing).
    pub fn validate(&self) {
        match self {
            ColumnType::Int { width } => assert!((1..=8).contains(width), "int width {width}"),
            ColumnType::Float { width } => {
                assert!(*width == 4 || *width == 8, "float width {width}")
            }
            ColumnType::Char { width } => assert!(*width >= 1, "char width 0"),
        }
    }
}

/// A runtime value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Integer.
    Int(i64),
    /// Floating point.
    Float(f64),
    /// Character string (compared/truncated per the column width on flash).
    Str(String),
}

impl Value {
    /// Encode into exactly `ty.width()` bytes at the start of `out`.
    pub fn encode(&self, ty: &ColumnType, out: &mut [u8]) -> Result<()> {
        let w = ty.width();
        debug_assert!(out.len() >= w);
        match (self, ty) {
            (Value::Int(v), ColumnType::Int { width }) => {
                let bytes = v.to_le_bytes();
                out[..*width as usize].copy_from_slice(&bytes[..*width as usize]);
                Ok(())
            }
            (Value::Float(v), ColumnType::Float { width: 4 }) => {
                out[..4].copy_from_slice(&(*v as f32).to_le_bytes());
                Ok(())
            }
            (Value::Float(v), ColumnType::Float { width: 8 }) => {
                out[..8].copy_from_slice(&v.to_le_bytes());
                Ok(())
            }
            (Value::Str(s), ColumnType::Char { width }) => {
                let w = *width as usize;
                let bytes = s.as_bytes();
                let n = bytes.len().min(w);
                out[..n].copy_from_slice(&bytes[..n]);
                out[n..w].fill(0);
                Ok(())
            }
            _ => Err(StorageError::TypeMismatch {
                column: String::new(),
                expected: type_name(ty),
            }),
        }
    }

    /// Decode from exactly `ty.width()` bytes.
    pub fn decode(ty: &ColumnType, bytes: &[u8]) -> Value {
        match ty {
            ColumnType::Int { width } => {
                let w = *width as usize;
                let mut buf = [0u8; 8];
                buf[..w].copy_from_slice(&bytes[..w]);
                // Sign-extend from the top bit of the stored width.
                let negative = w < 8 && bytes[w - 1] & 0x80 != 0;
                if negative {
                    buf[w..].fill(0xff);
                }
                Value::Int(i64::from_le_bytes(buf))
            }
            ColumnType::Float { width: 4 } => {
                Value::Float(f32::from_le_bytes(bytes[..4].try_into().unwrap()) as f64)
            }
            ColumnType::Float { .. } => {
                Value::Float(f64::from_le_bytes(bytes[..8].try_into().unwrap()))
            }
            ColumnType::Char { width } => {
                let w = *width as usize;
                let end = bytes[..w].iter().position(|b| *b == 0).unwrap_or(w);
                Value::Str(String::from_utf8_lossy(&bytes[..end]).into_owned())
            }
        }
    }

    /// Order-preserving u64 key for the B+-tree layer.
    ///
    /// * integers: offset by `i64::MIN` so signed order maps to unsigned;
    /// * floats: standard monotone bit trick (flip sign bit or all bits);
    /// * strings: first 8 bytes big-endian (prefix order — GhostDB indexes
    ///   compare fixed-width values, and ties fall back to exact predicate
    ///   re-checks at the operator level).
    pub fn order_key(&self) -> u64 {
        match self {
            Value::Int(v) => (*v as i128 - i64::MIN as i128) as u64,
            Value::Float(v) => {
                let bits = v.to_bits();
                if bits >> 63 == 0 {
                    bits | 0x8000_0000_0000_0000
                } else {
                    !bits
                }
            }
            Value::Str(s) => {
                let mut buf = [0u8; 8];
                let bytes = s.as_bytes();
                let n = bytes.len().min(8);
                buf[..n].copy_from_slice(&bytes[..n]);
                u64::from_be_bytes(buf)
            }
        }
    }

    /// Total-order comparison used by predicate evaluation. Panics on
    /// cross-type comparisons — the planner type-checks predicates first.
    pub fn cmp_value(&self, other: &Value) -> std::cmp::Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b).expect("NaN in data"),
            (Value::Int(a), Value::Float(b)) => (*a as f64).partial_cmp(b).expect("NaN"),
            (Value::Float(a), Value::Int(b)) => a.partial_cmp(&(*b as f64)).expect("NaN"),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            _ => panic!("comparing {self:?} with {other:?}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

fn type_name(ty: &ColumnType) -> &'static str {
    match ty {
        ColumnType::Int { .. } => "int",
        ColumnType::Float { .. } => "float",
        ColumnType::Char { .. } => "char",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_roundtrip_all_widths() {
        for width in 1u8..=8 {
            let ty = ColumnType::Int { width };
            let max = if width == 8 {
                i64::MAX
            } else {
                (1i64 << (width * 8 - 1)) - 1
            };
            for v in [0, 1, -1, max, -max] {
                let mut buf = vec![0u8; ty.width()];
                Value::Int(v).encode(&ty, &mut buf).unwrap();
                assert_eq!(Value::decode(&ty, &buf), Value::Int(v), "w={width} v={v}");
            }
        }
    }

    #[test]
    fn float_roundtrip() {
        let ty = ColumnType::Float { width: 8 };
        for v in [0.0, 1.5, -2.25, 1e300] {
            let mut buf = vec![0u8; 8];
            Value::Float(v).encode(&ty, &mut buf).unwrap();
            assert_eq!(Value::decode(&ty, &buf), Value::Float(v));
        }
        // float(4) loses precision but preserves value for f32-exact inputs.
        let ty4 = ColumnType::float();
        let mut buf = vec![0u8; 4];
        Value::Float(23.5).encode(&ty4, &mut buf).unwrap();
        assert_eq!(Value::decode(&ty4, &buf), Value::Float(23.5));
    }

    #[test]
    fn char_pads_and_truncates() {
        let ty = ColumnType::char(6);
        let mut buf = vec![0xffu8; 6];
        Value::Str("ab".into()).encode(&ty, &mut buf).unwrap();
        assert_eq!(&buf, &[b'a', b'b', 0, 0, 0, 0]);
        assert_eq!(Value::decode(&ty, &buf), Value::Str("ab".into()));
        Value::Str("abcdefgh".into()).encode(&ty, &mut buf).unwrap();
        assert_eq!(Value::decode(&ty, &buf), Value::Str("abcdef".into()));
    }

    #[test]
    fn type_mismatch_is_error() {
        let mut buf = vec![0u8; 4];
        assert!(Value::Str("x".into())
            .encode(&ColumnType::int(), &mut buf)
            .is_err());
    }

    #[test]
    fn order_keys_preserve_int_order() {
        let vals = [-1_000_000i64, -1, 0, 1, 42, i64::MAX];
        for w in vals.windows(2) {
            assert!(
                Value::Int(w[0]).order_key() < Value::Int(w[1]).order_key(),
                "{} vs {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn order_keys_preserve_float_order() {
        let vals = [-1e10, -1.0, -0.5, 0.0, 0.5, 1.0, 1e10];
        for w in vals.windows(2) {
            assert!(Value::Float(w[0]).order_key() < Value::Float(w[1]).order_key());
        }
    }

    #[test]
    fn order_keys_preserve_string_prefix_order() {
        assert!(Value::Str("abc".into()).order_key() < Value::Str("abd".into()).order_key());
        assert!(Value::Str("a".into()).order_key() < Value::Str("b".into()).order_key());
    }

    #[test]
    fn cmp_value_mixed_numeric() {
        use std::cmp::Ordering::*;
        assert_eq!(Value::Int(2).cmp_value(&Value::Float(2.5)), Less);
        assert_eq!(Value::Float(3.0).cmp_value(&Value::Int(3)), Equal);
    }
}
