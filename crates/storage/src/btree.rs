//! Bulk-loaded B+-tree over flash pages.
//!
//! This is the value-lookup layer of GhostDB's climbing indexes. §3.4: "All
//! indexes in CI are implemented by means of B+-Trees, so that CI requires
//! at most one buffer per B+-Tree level" — a [`BTreeCursor`] pins exactly
//! one RAM buffer per level and re-reads a level's page only when the
//! descent actually moves to a different page, so consecutive probes with
//! nearby keys (the sorted-ID probe streams of Pre-Filter plans) share the
//! upper levels for free, while genuinely random probes pay a full descent.
//!
//! Keys are order-preserving `u64` encodings of column values
//! ([`crate::value::Value::order_key`]); payloads are fixed-width byte
//! strings (climbing indexes store per-level ID-run descriptors there).
//!
//! Node layout in one page:
//! ```text
//! byte 0      : node kind (0 = leaf, 1 = internal)
//! bytes 1..3  : entry count (u16 LE)
//! bytes 4..8  : leaf: next-leaf page index (u32 LE, MAX = none)
//! bytes 8..   : entries
//!               leaf     entry = key u64 | payload [P bytes]
//!               internal entry = key u64 (max key of child) | child u32
//! ```

use crate::error::StorageError;
use crate::Result;
use ghostdb_flash::{FlashDevice, PageReq, SegmentAllocator, StripedSegment};
use ghostdb_token::{RamArena, RamBuffer};
use std::collections::VecDeque;

const HEADER: usize = 8;
const KIND_LEAF: u8 = 0;
const KIND_INTERNAL: u8 = 1;
const NO_LEAF: u32 = u32::MAX;
const INTERNAL_ENTRY: usize = 12;

/// An immutable, bulk-loaded B+-tree on flash.
#[derive(Debug, Clone)]
pub struct BTree {
    /// Chip-striped placement: consecutive tree pages rotate across
    /// chips, so a read-ahead window of neighbouring leaves overlaps
    /// across channels. Single-chip devices get the plain contiguous run.
    segment: StripedSegment,
    /// Number of levels (0 for an empty tree; 1 = single leaf).
    height: u8,
    /// Page index (within the segment) of the root node.
    root_page: u64,
    /// Fixed payload width of leaf entries.
    payload_size: usize,
    /// Total leaf entries.
    entries: u64,
    page_size: usize,
}

impl BTree {
    /// Leaf entries per page for a payload width.
    pub fn leaf_capacity(page_size: usize, payload_size: usize) -> usize {
        (page_size - HEADER) / (8 + payload_size)
    }

    /// Internal entries per page.
    pub fn internal_capacity(page_size: usize) -> usize {
        (page_size - HEADER) / INTERNAL_ENTRY
    }

    /// Pages a tree over `n` entries will occupy (for pre-sizing).
    pub fn pages_needed(n: u64, page_size: usize, payload_size: usize) -> u64 {
        if n == 0 {
            return 1;
        }
        let mut total = 0u64;
        let mut level = n.div_ceil(Self::leaf_capacity(page_size, payload_size) as u64);
        total += level;
        while level > 1 {
            level = level.div_ceil(Self::internal_capacity(page_size) as u64);
            total += level;
        }
        total
    }

    /// Bulk-build from entries **sorted by key, unique keys**.
    ///
    /// Charges sequential page writes — the cost of burning the index onto
    /// the key at load time.
    pub fn bulk_build(
        dev: &mut FlashDevice,
        alloc: &mut SegmentAllocator,
        payload_size: usize,
        entries: &[(u64, Vec<u8>)],
    ) -> Result<BTree> {
        let page_size = dev.page_size();
        let leaf_cap = Self::leaf_capacity(page_size, payload_size);
        assert!(leaf_cap >= 2, "payload too wide for page");
        for w in entries.windows(2) {
            if w[0].0 >= w[1].0 {
                return Err(StorageError::Corrupt(format!(
                    "bulk_build requires strictly increasing keys ({} then {})",
                    w[0].0, w[1].0
                )));
            }
        }
        let n = entries.len() as u64;
        let pages = Self::pages_needed(n, page_size, payload_size);
        let segment = alloc.alloc_striped(pages)?;
        if n == 0 {
            // Single empty leaf.
            let mut image = vec![0u8; HEADER];
            image[0] = KIND_LEAF;
            image[4..8].copy_from_slice(&NO_LEAF.to_le_bytes());
            dev.write(segment.lpn(0)?, &image)?;
            return Ok(BTree {
                segment,
                height: 1,
                root_page: 0,
                payload_size,
                entries: 0,
                page_size,
            });
        }

        // Write leaves; remember (max_key, page) per leaf.
        let n_leaves = n.div_ceil(leaf_cap as u64);
        let mut level_index: Vec<(u64, u32)> = Vec::with_capacity(n_leaves as usize);
        let mut page_no = 0u64;
        let entry_size = 8 + payload_size;
        let mut image = vec![0u8; page_size];
        for chunk in entries.chunks(leaf_cap) {
            image.fill(0);
            image[0] = KIND_LEAF;
            image[1..3].copy_from_slice(&(chunk.len() as u16).to_le_bytes());
            let next = if page_no + 1 < n_leaves {
                (page_no + 1) as u32
            } else {
                NO_LEAF
            };
            image[4..8].copy_from_slice(&next.to_le_bytes());
            for (i, (key, payload)) in chunk.iter().enumerate() {
                debug_assert_eq!(payload.len(), payload_size);
                let at = HEADER + i * entry_size;
                image[at..at + 8].copy_from_slice(&key.to_le_bytes());
                image[at + 8..at + 8 + payload_size].copy_from_slice(payload);
            }
            let used = HEADER + chunk.len() * entry_size;
            dev.write(segment.lpn(page_no)?, &image[..used])?;
            level_index.push((chunk.last().expect("non-empty chunk").0, page_no as u32));
            page_no += 1;
        }

        // Build internal levels bottom-up.
        let mut height = 1u8;
        let int_cap = Self::internal_capacity(page_size);
        while level_index.len() > 1 {
            let mut upper: Vec<(u64, u32)> = Vec::with_capacity(level_index.len() / int_cap + 1);
            for chunk in level_index.chunks(int_cap) {
                image.fill(0);
                image[0] = KIND_INTERNAL;
                image[1..3].copy_from_slice(&(chunk.len() as u16).to_le_bytes());
                for (i, (max_key, child)) in chunk.iter().enumerate() {
                    let at = HEADER + i * INTERNAL_ENTRY;
                    image[at..at + 8].copy_from_slice(&max_key.to_le_bytes());
                    image[at + 8..at + 12].copy_from_slice(&child.to_le_bytes());
                }
                let used = HEADER + chunk.len() * INTERNAL_ENTRY;
                dev.write(segment.lpn(page_no)?, &image[..used])?;
                upper.push((chunk.last().expect("non-empty").0, page_no as u32));
                page_no += 1;
            }
            level_index = upper;
            height += 1;
        }
        debug_assert_eq!(page_no, pages);
        Ok(BTree {
            segment,
            height,
            root_page: page_no - 1,
            payload_size,
            entries: n,
            page_size,
        })
    }

    /// Number of leaf entries.
    pub fn len(&self) -> u64 {
        self.entries
    }

    /// True when the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Number of levels.
    pub fn height(&self) -> u8 {
        self.height
    }

    /// Payload width of leaf entries.
    pub fn payload_size(&self) -> usize {
        self.payload_size
    }

    /// Bytes occupied on flash (size model input).
    pub fn bytes(&self) -> u64 {
        self.segment.pages() * self.page_size as u64
    }

    /// Backing segment (so owners can free a superseded tree when an
    /// index rebuilds itself out of place).
    pub fn segment(&self) -> &StripedSegment {
        &self.segment
    }

    /// Open a cursor (pins one RAM buffer per level — the §3.4 budget).
    pub fn cursor(&self, ram: &RamArena) -> Result<BTreeCursor> {
        let mut bufs = Vec::with_capacity(self.height as usize);
        for _ in 0..self.height {
            bufs.push(ram.alloc()?);
        }
        Ok(BTreeCursor {
            tree: self.clone(),
            bufs,
            pages: vec![None; self.height as usize],
            leaf_page: None,
            leaf_pos: 0,
            read_ahead: 0,
            window: VecDeque::new(),
            spare: Vec::new(),
        })
    }
}

/// Cursor over a [`BTree`]: seek + forward scan, one RAM buffer per level.
#[derive(Debug)]
pub struct BTreeCursor {
    tree: BTree,
    /// One buffer per level; index 0 = leaf level.
    bufs: Vec<RamBuffer>,
    /// Page currently cached per level.
    pages: Vec<Option<u64>>,
    /// Leaf the cursor is positioned on.
    leaf_page: Option<u64>,
    /// Next entry index within the leaf.
    leaf_pos: usize,
    /// Read-ahead window width in leaf pages (0/1 = off): upcoming leaf
    /// pages whose addresses are already known from the cached parent are
    /// fetched in one vectored batch instead of one read per leaf.
    read_ahead: usize,
    /// Prefetched leaf images `(page, image)` in consumption order. These
    /// model the per-chip NAND data registers a vectored read parks pages
    /// in — deliberately NOT `RamArena` buffers, so the token's RAM
    /// accounting (`peak_ram_buffers`) is identical with the window on or
    /// off, exactly as the counters are.
    window: VecDeque<(u64, Vec<u8>)>,
    /// Retired window buffers, reused by the next refill.
    spare: Vec<Vec<u8>>,
}

impl BTreeCursor {
    /// Set the read-ahead window width (0/1 = off, the default). Every
    /// prefetched page is provably one the serial cursor would read, so
    /// the counters, results and access pattern are identical at any
    /// width — only the channel-overlap clock improves.
    pub fn set_read_ahead(&mut self, window: usize) {
        self.read_ahead = window;
    }

    fn load(&mut self, dev: &mut FlashDevice, level: usize, page: u64) -> Result<()> {
        if self.pages[level] == Some(page) {
            return Ok(());
        }
        if level == 0 {
            if let Some(at) = self.window.iter().position(|(p, _)| *p == page) {
                // The window is built strictly from pages the serial
                // cursor reads in order, so the hit is always the front.
                debug_assert_eq!(at, 0, "window consumed out of order");
                for _ in 0..at {
                    let (_, buf) = self.window.pop_front().expect("checked");
                    self.spare.push(buf);
                }
                let (_, buf) = self.window.pop_front().expect("checked");
                let page_size = self.tree.page_size;
                self.bufs[0][..page_size].copy_from_slice(&buf[..page_size]);
                self.spare.push(buf);
                self.pages[0] = Some(page);
                return Ok(());
            }
        }
        let lpn = self.tree.segment.lpn(page)?;
        let page_size = self.tree.page_size;
        dev.read(lpn, 0, &mut self.bufs[level][..page_size])?;
        self.pages[level] = Some(page);
        Ok(())
    }

    /// Issue one vectored batch for `pages` and park the images in the
    /// window. Counters are bit-identical to reading each page singly
    /// (`FlashDevice::read_batch_into` contract); only the overlap clock
    /// sees the batch.
    fn issue_window(&mut self, dev: &mut FlashDevice, pages: &[u64]) -> Result<()> {
        let page_size = self.tree.page_size;
        let mut reqs = Vec::with_capacity(pages.len());
        let mut bufs: Vec<Vec<u8>> = Vec::with_capacity(pages.len());
        for &page in pages {
            reqs.push(PageReq::full_page(self.tree.segment.lpn(page)?, page_size));
            let mut buf = self.spare.pop().unwrap_or_default();
            buf.resize(page_size, 0);
            bufs.push(buf);
        }
        {
            let mut outs: Vec<&mut [u8]> = bufs.iter_mut().map(|b| &mut b[..]).collect();
            dev.read_batch_into(&reqs, &mut outs)?;
        }
        for (&page, buf) in pages.iter().zip(bufs) {
            self.window.push_back((page, buf));
        }
        Ok(())
    }

    /// Refill the window for a range scan about to move to leaf `next`
    /// with upper bound `hi`: batch `next` together with the following
    /// sibling leaves the scan is certain to visit. Certainty comes from
    /// the cached parent (`bufs[1]`): sibling `j` is visited iff sibling
    /// `j-1`'s max key is ≤ `hi` (then no entry of `j-1` stops the scan
    /// and the leaf chain continues into `j`). A leaf outside the cached
    /// parent stalls the window — prefetching it would require internal
    /// pages the serial cursor never re-reads.
    fn prefetch_scan_chain(&mut self, dev: &mut FlashDevice, next: u64, hi: u64) -> Result<()> {
        if self.read_ahead < 2 || (self.tree.height as usize) < 2 {
            return Ok(());
        }
        if self.window.iter().any(|(p, _)| *p == next) || self.pages[1].is_none() {
            return Ok(());
        }
        debug_assert_eq!(self.node_kind(1), KIND_INTERNAL);
        let count = self.node_count(1);
        let Some(pos) = (0..count).position(|i| self.internal_entry(1, i).1 as u64 == next) else {
            return Ok(());
        };
        let mut pages = vec![next];
        for j in pos + 1..count {
            if pages.len() >= self.read_ahead || self.internal_entry(1, j - 1).0 > hi {
                break;
            }
            pages.push(self.internal_entry(1, j).1 as u64);
        }
        self.issue_window(dev, &pages)
    }

    /// Refill the window for an ascending probe run: route each of the
    /// `upcoming` probe keys (ascending) through the cached parent exactly
    /// as `seek` would, and batch the distinct leaves they land on. Keys
    /// past the parent's key space stop the window — their descents leave
    /// the cached parent. Every batched leaf is one the serial probe run
    /// reads (first key routed to it triggers the read; later keys hit the
    /// leaf cache), so counters and access pattern are unchanged.
    pub fn prefetch_probe_window(&mut self, dev: &mut FlashDevice, upcoming: &[u64]) -> Result<()> {
        if self.read_ahead < 2 || (self.tree.height as usize) < 2 {
            return Ok(());
        }
        if !self.window.is_empty() || self.pages[1].is_none() {
            return Ok(());
        }
        debug_assert_eq!(self.node_kind(1), KIND_INTERNAL);
        let count = self.node_count(1);
        let parent_max = self.internal_entry(1, count - 1).0;
        let mut pages: Vec<u64> = Vec::new();
        for &key in upcoming {
            if key > parent_max {
                break;
            }
            let mut lo = 0usize;
            let mut hi = count;
            while lo < hi {
                let mid = (lo + hi) / 2;
                if self.internal_entry(1, mid).0 < key {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            let child = self.internal_entry(1, lo.min(count - 1)).1 as u64;
            if self.pages[0] == Some(child) || pages.last() == Some(&child) {
                continue;
            }
            pages.push(child);
            if pages.len() >= self.read_ahead {
                break;
            }
        }
        if pages.is_empty() {
            return Ok(());
        }
        self.issue_window(dev, &pages)
    }

    fn node_kind(&self, level: usize) -> u8 {
        self.bufs[level][0]
    }

    fn node_count(&self, level: usize) -> usize {
        u16::from_le_bytes(self.bufs[level][1..3].try_into().unwrap()) as usize
    }

    fn leaf_next(&self) -> Option<u64> {
        let next = u32::from_le_bytes(self.bufs[0][4..8].try_into().unwrap());
        (next != NO_LEAF).then_some(next as u64)
    }

    fn leaf_key(&self, i: usize) -> u64 {
        let at = HEADER + i * (8 + self.tree.payload_size);
        u64::from_le_bytes(self.bufs[0][at..at + 8].try_into().unwrap())
    }

    fn leaf_payload(&self, i: usize) -> &[u8] {
        let at = HEADER + i * (8 + self.tree.payload_size) + 8;
        &self.bufs[0][at..at + self.tree.payload_size]
    }

    /// First entry index in the buffered leaf whose key is ≥ `target`
    /// (the leaf-level lower bound shared by `seek` and the ascending
    /// fast path — one implementation so they can never diverge).
    fn leaf_lower_bound(&self, target: u64) -> usize {
        let count = self.node_count(0);
        let mut lo = 0usize;
        let mut hi = count;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.leaf_key(mid) < target {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    fn internal_entry(&self, level: usize, i: usize) -> (u64, u32) {
        let at = HEADER + i * INTERNAL_ENTRY;
        let key = u64::from_le_bytes(self.bufs[level][at..at + 8].try_into().unwrap());
        let child = u32::from_le_bytes(self.bufs[level][at + 8..at + 12].try_into().unwrap());
        (key, child)
    }

    /// Position at the first entry with `key ≥ target`.
    pub fn seek(&mut self, dev: &mut FlashDevice, target: u64) -> Result<()> {
        if self.tree.height == 0 {
            return Ok(());
        }
        let mut page = self.tree.root_page;
        for level in (1..self.tree.height as usize).rev() {
            self.load(dev, level, page)?;
            debug_assert_eq!(self.node_kind(level), KIND_INTERNAL);
            let count = self.node_count(level);
            // First child whose max key ≥ target; clamp to the last child.
            let mut lo = 0usize;
            let mut hi = count;
            while lo < hi {
                let mid = (lo + hi) / 2;
                if self.internal_entry(level, mid).0 < target {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            let idx = lo.min(count - 1);
            page = self.internal_entry(level, idx).1 as u64;
        }
        self.load(dev, 0, page)?;
        debug_assert_eq!(self.node_kind(0), KIND_LEAF);
        self.leaf_page = Some(page);
        self.leaf_pos = self.leaf_lower_bound(target);
        Ok(())
    }

    /// Next `(key, payload)` in key order; `payload_out` receives the
    /// payload bytes. Crosses leaf boundaries via the next-leaf chain.
    pub fn next_into(
        &mut self,
        dev: &mut FlashDevice,
        payload_out: &mut [u8],
    ) -> Result<Option<u64>> {
        let Some(mut page) = self.leaf_page else {
            return Ok(None);
        };
        loop {
            self.load(dev, 0, page)?;
            if self.leaf_pos < self.node_count(0) {
                let key = self.leaf_key(self.leaf_pos);
                payload_out[..self.tree.payload_size]
                    .copy_from_slice(self.leaf_payload(self.leaf_pos));
                self.leaf_pos += 1;
                return Ok(Some(key));
            }
            match self.leaf_next() {
                Some(next) => {
                    page = next;
                    self.leaf_page = Some(next);
                    self.leaf_pos = 0;
                }
                None => {
                    self.leaf_page = None;
                    return Ok(None);
                }
            }
        }
    }

    /// Exact-match lookup: payload for `key` if present.
    pub fn lookup(&mut self, dev: &mut FlashDevice, key: u64) -> Result<Option<Vec<u8>>> {
        self.seek(dev, key)?;
        let mut payload = vec![0u8; self.tree.payload_size];
        match self.next_into(dev, &mut payload)? {
            Some(k) if k == key => Ok(Some(payload)),
            _ => Ok(None),
        }
    }

    /// Exact-match lookup into a caller buffer, optimised for ascending
    /// probe runs: when the leaf page already buffered covers `key`, the
    /// whole descent is skipped and the leaf is binary-searched in place
    /// (zero I/O, zero internal-node work); otherwise it falls back to a
    /// full [`seek`](Self::seek). Identical results and identical pages
    /// read either way — the fast path only elides work on pages the slow
    /// path would find cached.
    ///
    /// Returns `true` (payload copied into `payload_out`) on an exact hit.
    pub fn lookup_ascending_into(
        &mut self,
        dev: &mut FlashDevice,
        key: u64,
        payload_out: &mut [u8],
    ) -> Result<bool> {
        if self.pages[0].is_some() && self.node_kind(0) == KIND_LEAF {
            let count = self.node_count(0);
            if count > 0 && self.leaf_key(0) <= key && key <= self.leaf_key(count - 1) {
                let lo = self.leaf_lower_bound(key);
                if self.leaf_key(lo) == key {
                    payload_out[..self.tree.payload_size].copy_from_slice(self.leaf_payload(lo));
                    self.leaf_page = self.pages[0];
                    self.leaf_pos = lo + 1;
                    return Ok(true);
                }
                self.leaf_page = self.pages[0];
                self.leaf_pos = lo;
                return Ok(false);
            }
        }
        self.seek(dev, key)?;
        match self.next_into(dev, payload_out)? {
            Some(k) if k == key => Ok(true),
            _ => Ok(false),
        }
    }

    /// Position at the first entry with `key ≥ target`, reusing the cached
    /// leaf when it already covers `target` — the same fast path as
    /// [`lookup_ascending_into`](Self::lookup_ascending_into), shared by
    /// range scans so consecutive ascending scans on one cursor skip the
    /// root-to-leaf descent entirely (zero I/O, zero internal-node work).
    /// Identical position and identical pages read either way — the fast
    /// path only elides work on pages a full [`seek`](Self::seek) would
    /// find cached.
    pub fn seek_ascending(&mut self, dev: &mut FlashDevice, target: u64) -> Result<()> {
        if self.pages[0].is_some() && self.node_kind(0) == KIND_LEAF {
            let count = self.node_count(0);
            if count > 0 && self.leaf_key(0) <= target && target <= self.leaf_key(count - 1) {
                self.leaf_page = self.pages[0];
                self.leaf_pos = self.leaf_lower_bound(target);
                return Ok(());
            }
        }
        self.seek(dev, target)
    }

    /// Single-traversal range scan: hand every `(key, payload)` with
    /// `lo ≤ key ≤ hi` to `visit`, in ascending key order, touching each
    /// qualifying leaf entry exactly once. The payload slice borrows the
    /// leaf buffer directly (no per-entry copy), so a caller can decode
    /// several independent views of one payload from a single traversal —
    /// the climbing-index multi-level read path is built on this.
    ///
    /// Positioning goes through [`seek_ascending`](Self::seek_ascending),
    /// so a scan continuing past an earlier ascending probe or scan reuses
    /// the buffered leaf. An inverted range (`hi < lo`) visits nothing.
    pub fn scan_range(
        &mut self,
        dev: &mut FlashDevice,
        lo: u64,
        hi: u64,
        mut visit: impl FnMut(u64, &[u8]) -> Result<()>,
    ) -> Result<()> {
        if hi < lo {
            return Ok(());
        }
        self.seek_ascending(dev, lo)?;
        let Some(mut page) = self.leaf_page else {
            return Ok(());
        };
        loop {
            self.load(dev, 0, page)?;
            let count = self.node_count(0);
            while self.leaf_pos < count {
                let key = self.leaf_key(self.leaf_pos);
                if key > hi {
                    return Ok(());
                }
                visit(key, self.leaf_payload(self.leaf_pos))?;
                self.leaf_pos += 1;
            }
            match self.leaf_next() {
                Some(next) => {
                    // About to cross into the next leaf: batch it together
                    // with the siblings the scan is certain to visit.
                    self.prefetch_scan_chain(dev, next, hi)?;
                    page = next;
                    self.leaf_page = Some(next);
                    self.leaf_pos = 0;
                }
                None => {
                    self.leaf_page = None;
                    return Ok(());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghostdb_flash::{FlashGeometry, FlashTiming};

    fn setup() -> (FlashDevice, SegmentAllocator, RamArena) {
        let dev = FlashDevice::new(
            FlashGeometry::for_capacity(16 * 1024 * 1024),
            FlashTiming::default(),
        );
        let alloc = SegmentAllocator::new(dev.logical_pages());
        let ram = RamArena::paper_default();
        (dev, alloc, ram)
    }

    fn build(dev: &mut FlashDevice, alloc: &mut SegmentAllocator, n: u64, stride: u64) -> BTree {
        let entries: Vec<(u64, Vec<u8>)> = (0..n)
            .map(|i| (i * stride, (i as u32).to_le_bytes().to_vec()))
            .collect();
        BTree::bulk_build(dev, alloc, 4, &entries).unwrap()
    }

    #[test]
    fn lookup_hits_and_misses() {
        let (mut dev, mut alloc, ram) = setup();
        let tree = build(&mut dev, &mut alloc, 10_000, 3);
        assert!(tree.height() >= 2);
        let mut cur = tree.cursor(&ram).unwrap();
        for probe in [0u64, 3, 2_997, 29_997] {
            let got = cur.lookup(&mut dev, probe).unwrap().unwrap();
            assert_eq!(
                u32::from_le_bytes(got.try_into().unwrap()) as u64,
                probe / 3
            );
        }
        assert!(cur.lookup(&mut dev, 1).unwrap().is_none());
        assert!(cur.lookup(&mut dev, 30_000).unwrap().is_none());
    }

    #[test]
    fn range_scan_in_order() {
        let (mut dev, mut alloc, ram) = setup();
        let tree = build(&mut dev, &mut alloc, 5_000, 2);
        let mut cur = tree.cursor(&ram).unwrap();
        cur.seek(&mut dev, 1001).unwrap(); // between 1000 and 1002
        let mut payload = vec![0u8; 4];
        let mut expect = 1002u64;
        let mut count = 0;
        while let Some(k) = cur.next_into(&mut dev, &mut payload).unwrap() {
            assert_eq!(k, expect);
            expect += 2;
            count += 1;
            if count == 600 {
                break;
            }
        }
        assert_eq!(count, 600);
    }

    #[test]
    fn scan_everything_crosses_leaves() {
        let (mut dev, mut alloc, ram) = setup();
        let tree = build(&mut dev, &mut alloc, 2_000, 1);
        let mut cur = tree.cursor(&ram).unwrap();
        cur.seek(&mut dev, 0).unwrap();
        let mut payload = vec![0u8; 4];
        let mut n = 0u64;
        while let Some(k) = cur.next_into(&mut dev, &mut payload).unwrap() {
            assert_eq!(k, n);
            n += 1;
        }
        assert_eq!(n, 2_000);
    }

    #[test]
    fn empty_tree() {
        let (mut dev, mut alloc, ram) = setup();
        let tree = BTree::bulk_build(&mut dev, &mut alloc, 4, &[]).unwrap();
        assert!(tree.is_empty());
        let mut cur = tree.cursor(&ram).unwrap();
        assert!(cur.lookup(&mut dev, 5).unwrap().is_none());
        cur.seek(&mut dev, 0).unwrap();
        let mut p = vec![0u8; 4];
        assert!(cur.next_into(&mut dev, &mut p).unwrap().is_none());
    }

    #[test]
    fn single_leaf_tree() {
        let (mut dev, mut alloc, ram) = setup();
        let tree = build(&mut dev, &mut alloc, 5, 10);
        assert_eq!(tree.height(), 1);
        let mut cur = tree.cursor(&ram).unwrap();
        assert!(cur.lookup(&mut dev, 40).unwrap().is_some());
        assert!(cur.lookup(&mut dev, 41).unwrap().is_none());
    }

    #[test]
    fn unsorted_input_rejected() {
        let (mut dev, mut alloc, _ram) = setup();
        let entries = vec![(5u64, vec![0u8; 4]), (3u64, vec![0u8; 4])];
        assert!(BTree::bulk_build(&mut dev, &mut alloc, 4, &entries).is_err());
    }

    #[test]
    fn cursor_caches_levels_across_nearby_probes() {
        let (mut dev, mut alloc, ram) = setup();
        let tree = build(&mut dev, &mut alloc, 50_000, 1);
        let mut cur = tree.cursor(&ram).unwrap();
        cur.lookup(&mut dev, 1000).unwrap();
        let snap = dev.snapshot();
        // Probing the immediate neighbours shouldn't re-read anything: all
        // levels cached.
        cur.lookup(&mut dev, 1001).unwrap();
        cur.lookup(&mut dev, 1002).unwrap();
        assert_eq!(dev.stats_since(&snap).pages_read, 0);
        // A far probe re-reads at most one page per level.
        let snap = dev.snapshot();
        cur.lookup(&mut dev, 49_000).unwrap();
        assert!(dev.stats_since(&snap).pages_read <= tree.height() as u64);
    }

    #[test]
    fn ascending_lookup_matches_plain_lookup() {
        let (mut dev, mut alloc, ram) = setup();
        let tree = build(&mut dev, &mut alloc, 20_000, 3);
        let mut plain = tree.cursor(&ram).unwrap();
        let mut fast = tree.cursor(&ram).unwrap();
        let mut payload = vec![0u8; 4];
        // Mix of hits, misses and leaf-boundary crossings, ascending.
        for probe in (0u64..60_000).step_by(7) {
            let expect = plain.lookup(&mut dev, probe).unwrap();
            let hit = fast
                .lookup_ascending_into(&mut dev, probe, &mut payload)
                .unwrap();
            assert_eq!(hit, expect.is_some(), "probe {probe}");
            if let Some(p) = expect {
                assert_eq!(payload, p, "probe {probe}");
            }
        }
    }

    #[test]
    fn ascending_lookup_within_cached_leaf_reads_nothing() {
        let (mut dev, mut alloc, ram) = setup();
        let tree = build(&mut dev, &mut alloc, 50_000, 1);
        let mut cur = tree.cursor(&ram).unwrap();
        let mut payload = vec![0u8; 4];
        assert!(cur
            .lookup_ascending_into(&mut dev, 1000, &mut payload)
            .unwrap());
        let snap = dev.snapshot();
        // Neighbours live in the same leaf: the fast path must not touch
        // flash at all, not even cached internal levels.
        // Leaf capacity is (2048-8)/12 = 170 keys; the leaf holding 1000
        // spans 850..=1019, so these probes all stay inside it.
        for probe in 1001..1019 {
            assert!(cur
                .lookup_ascending_into(&mut dev, probe, &mut payload)
                .unwrap());
        }
        assert_eq!(dev.stats_since(&snap).pages_read, 0);
    }

    /// Reference: keys in [lo, hi] via seek + next_into (the pre-scan_range
    /// traversal), for differential checks below.
    fn range_by_cursor(
        dev: &mut FlashDevice,
        tree: &BTree,
        ram: &RamArena,
        lo: u64,
        hi: u64,
    ) -> Vec<(u64, Vec<u8>)> {
        let mut cur = tree.cursor(ram).unwrap();
        let mut payload = vec![0u8; tree.payload_size()];
        let mut out = Vec::new();
        cur.seek(dev, lo).unwrap();
        while let Some(k) = cur.next_into(dev, &mut payload).unwrap() {
            if k > hi {
                break;
            }
            out.push((k, payload.clone()));
        }
        out
    }

    #[test]
    fn scan_range_matches_seek_next_loop() {
        let (mut dev, mut alloc, ram) = setup();
        let tree = build(&mut dev, &mut alloc, 20_000, 3);
        for (lo, hi) in [
            (0u64, 59_997u64), // everything
            (0, 0),            // single key at the left edge
            (3_000, 3_000),    // single mid key
            (3_001, 3_002),    // empty: between keys
            (70_000, 80_000),  // empty: past the last key
            (2_997, 30_003),   // leaf-boundary-spanning slice
            (10, 3),           // inverted
        ] {
            let want = range_by_cursor(&mut dev, &tree, &ram, lo, hi);
            let mut cur = tree.cursor(&ram).unwrap();
            let mut got = Vec::new();
            cur.scan_range(&mut dev, lo, hi, |k, p| {
                got.push((k, p.to_vec()));
                Ok(())
            })
            .unwrap();
            assert_eq!(got, want, "range [{lo}, {hi}]");
        }
    }

    #[test]
    fn scan_range_reads_each_page_at_most_once() {
        let (mut dev, mut alloc, ram) = setup();
        let tree = build(&mut dev, &mut alloc, 20_000, 1);
        let mut cur = tree.cursor(&ram).unwrap();
        let snap = dev.snapshot();
        let mut n = 0u64;
        cur.scan_range(&mut dev, 100, 18_000, |_, _| {
            n += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(n, 17_901);
        let leaf_cap = BTree::leaf_capacity(dev.page_size(), 4) as u64;
        let leaves_spanned = 18_000 / leaf_cap - 100 / leaf_cap + 1;
        let read = dev.stats_since(&snap).pages_read;
        assert!(
            read <= leaves_spanned + tree.height() as u64,
            "read {read} pages for {leaves_spanned} leaves + descent"
        );
    }

    #[test]
    fn ascending_rescan_reuses_cached_leaf() {
        let (mut dev, mut alloc, ram) = setup();
        let tree = build(&mut dev, &mut alloc, 50_000, 1);
        let mut cur = tree.cursor(&ram).unwrap();
        cur.scan_range(&mut dev, 1_000, 1_003, |_, _| Ok(()))
            .unwrap();
        // A second scan inside the same leaf must not touch flash at all:
        // seek_ascending resolves it on the buffered page.
        let snap = dev.snapshot();
        let mut n = 0u64;
        cur.scan_range(&mut dev, 1_005, 1_010, |_, _| {
            n += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(n, 6);
        assert_eq!(dev.stats_since(&snap).pages_read, 0);
    }

    fn setup_chips(chips: usize) -> (FlashDevice, SegmentAllocator, RamArena) {
        let dev = FlashDevice::with_chips(
            FlashGeometry::for_capacity(16 * 1024 * 1024),
            FlashTiming::default(),
            chips,
        );
        let alloc = SegmentAllocator::with_chips(dev.logical_pages(), chips);
        let ram = RamArena::paper_default();
        (dev, alloc, ram)
    }

    #[test]
    fn read_ahead_scan_is_bit_identical_and_never_reads_extra_pages() {
        let (mut dev, mut alloc, ram) = setup_chips(4);
        let tree = build(&mut dev, &mut alloc, 30_000, 2);
        assert!(tree.height() >= 2);
        for (lo, hi) in [
            (0u64, 59_998u64), // everything
            (100, 104),        // inside one leaf
            (2_000, 9_000),    // several leaves
            (59_000, 70_000),  // runs past the last key
            (9, 2),            // inverted
        ] {
            let mut serial_cur = tree.cursor(&ram).unwrap();
            let snap = dev.snapshot();
            let mut serial = Vec::new();
            serial_cur
                .scan_range(&mut dev, lo, hi, |k, p| {
                    serial.push((k, p.to_vec()));
                    Ok(())
                })
                .unwrap();
            let serial_delta = dev.stats_since(&snap);
            let mut ra_cur = tree.cursor(&ram).unwrap();
            ra_cur.set_read_ahead(8);
            let snap = dev.snapshot();
            let mut vectored = Vec::new();
            ra_cur
                .scan_range(&mut dev, lo, hi, |k, p| {
                    vectored.push((k, p.to_vec()));
                    Ok(())
                })
                .unwrap();
            let ra_delta = dev.stats_since(&snap);
            assert_eq!(vectored, serial, "range [{lo}, {hi}]: results diverge");
            // The satellite claim: read-ahead never reads a page the
            // serial cursor wouldn't — counters identical, not just close.
            assert_eq!(ra_delta, serial_delta, "range [{lo}, {hi}]: I/O diverges");
            assert!(
                ra_cur.window.is_empty(),
                "range [{lo}, {hi}]: window leftovers"
            );
        }
    }

    #[test]
    fn read_ahead_scan_overlaps_channels_on_striped_trees() {
        let (mut dev, mut alloc, ram) = setup_chips(4);
        let tree = build(&mut dev, &mut alloc, 30_000, 1);
        // Leaves rotate across all four chips.
        let mut serial_cur = tree.cursor(&ram).unwrap();
        let mut serial_dev = dev.fork();
        serial_cur
            .scan_range(&mut serial_dev, 0, 29_999, |_, _| Ok(()))
            .unwrap();
        let mut ra_cur = tree.cursor(&ram).unwrap();
        ra_cur.set_read_ahead(8);
        let mut ra_dev = dev.fork();
        ra_cur
            .scan_range(&mut ra_dev, 0, 29_999, |_, _| Ok(()))
            .unwrap();
        assert_eq!(
            ra_dev.snapshot(),
            serial_dev.snapshot(),
            "counters must not move"
        );
        let serial_clock = serial_dev.overlap_elapsed().as_ns();
        let ra_clock = ra_dev.overlap_elapsed().as_ns();
        assert!(
            ra_clock * 2 < serial_clock,
            "windowed scan should overlap ≥2x: {ra_clock} vs {serial_clock}"
        );
    }

    #[test]
    fn read_ahead_probe_run_is_bit_identical() {
        let (mut dev, mut alloc, ram) = setup_chips(4);
        let tree = build(&mut dev, &mut alloc, 30_000, 3);
        let keys: Vec<u64> = (0..90_000).step_by(11).collect(); // hits and misses
        let mut serial_cur = tree.cursor(&ram).unwrap();
        let mut payload = vec![0u8; 4];
        let snap = dev.snapshot();
        let mut serial = Vec::new();
        for &k in &keys {
            let hit = serial_cur
                .lookup_ascending_into(&mut dev, k, &mut payload)
                .unwrap();
            serial.push(hit.then(|| payload.clone()));
        }
        let serial_delta = dev.stats_since(&snap);
        let mut ra_cur = tree.cursor(&ram).unwrap();
        ra_cur.set_read_ahead(8);
        let snap = dev.snapshot();
        let mut vectored = Vec::new();
        for (i, &k) in keys.iter().enumerate() {
            let hit = ra_cur
                .lookup_ascending_into(&mut dev, k, &mut payload)
                .unwrap();
            vectored.push(hit.then(|| payload.clone()));
            ra_cur
                .prefetch_probe_window(&mut dev, &keys[i + 1..])
                .unwrap();
        }
        let ra_delta = dev.stats_since(&snap);
        assert_eq!(vectored, serial);
        assert_eq!(ra_delta, serial_delta, "probe-run I/O diverges");
        assert!(ra_cur.window.is_empty(), "probe window leftovers");
    }

    #[test]
    fn cursor_respects_ram_budget() {
        let (mut dev, mut alloc, _ram) = setup();
        let tree = build(&mut dev, &mut alloc, 50_000, 1);
        let h = tree.height() as usize;
        let small = RamArena::new(dev.page_size(), h - 1);
        assert!(tree.cursor(&small).is_err(), "needs one buffer per level");
        let enough = RamArena::new(dev.page_size(), h);
        assert!(tree.cursor(&enough).is_ok());
    }
}
