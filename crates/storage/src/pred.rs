//! Selection predicates (`attribute θ value`, paper §3).
//!
//! Predicates are conjunctive and each applies to a single column. They
//! evaluate exactly on decoded [`Value`]s (the Untrusted side and the
//! projection-time re-checks) and translate to inclusive order-key ranges
//! for climbing-index probes.

use crate::value::Value;
use std::cmp::Ordering;

/// Comparison operator of a selection predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `BETWEEN a AND b` (inclusive)
    Between,
}

/// A selection predicate on one column of one table.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// Column name.
    pub column: String,
    /// Operator.
    pub op: CmpOp,
    /// Comparison value (lower bound for `Between`).
    pub value: Value,
    /// Upper bound for `Between`, unused otherwise.
    pub value2: Option<Value>,
}

impl Predicate {
    /// Build a predicate; `Between` requires `value2`.
    pub fn new(column: &str, op: CmpOp, value: Value, value2: Option<Value>) -> Self {
        if op == CmpOp::Between {
            assert!(value2.is_some(), "BETWEEN requires two values");
        }
        Predicate {
            column: column.into(),
            op,
            value,
            value2,
        }
    }

    /// Shorthand for an equality predicate.
    pub fn eq(column: &str, value: Value) -> Self {
        Predicate::new(column, CmpOp::Eq, value, None)
    }

    /// Exact evaluation against a decoded value.
    pub fn matches(&self, v: &Value) -> bool {
        let ord = v.cmp_value(&self.value);
        match self.op {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
            CmpOp::Between => {
                ord != Ordering::Less
                    && v.cmp_value(self.value2.as_ref().expect("between")) != Ordering::Greater
            }
        }
    }

    /// Inclusive `[lo, hi]` order-key range for index probes.
    ///
    /// Exact for injective key encodings (ints, floats, strings up to 8
    /// significant bytes); for longer strings the range is a superset and
    /// the executor re-checks exact values at projection time.
    pub fn key_range(&self) -> (u64, u64) {
        let k = self.value.order_key();
        match self.op {
            CmpOp::Eq => (k, k),
            CmpOp::Lt => (0, k.saturating_sub(1)),
            CmpOp::Le => (0, k),
            CmpOp::Gt => (k.saturating_add(1), u64::MAX),
            CmpOp::Ge => (k, u64::MAX),
            CmpOp::Between => (k, self.value2.as_ref().expect("between").order_key()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_all_operators() {
        let v = Value::Int(10);
        assert!(Predicate::eq("c", Value::Int(10)).matches(&v));
        assert!(!Predicate::eq("c", Value::Int(11)).matches(&v));
        assert!(Predicate::new("c", CmpOp::Lt, Value::Int(11), None).matches(&v));
        assert!(!Predicate::new("c", CmpOp::Lt, Value::Int(10), None).matches(&v));
        assert!(Predicate::new("c", CmpOp::Le, Value::Int(10), None).matches(&v));
        assert!(Predicate::new("c", CmpOp::Gt, Value::Int(9), None).matches(&v));
        assert!(Predicate::new("c", CmpOp::Ge, Value::Int(10), None).matches(&v));
        assert!(
            Predicate::new("c", CmpOp::Between, Value::Int(5), Some(Value::Int(10))).matches(&v)
        );
        assert!(
            !Predicate::new("c", CmpOp::Between, Value::Int(5), Some(Value::Int(9))).matches(&v)
        );
    }

    #[test]
    fn key_ranges_bracket_matching_values() {
        // For every op, every matching value's key must fall in the range.
        let candidates: Vec<i64> = (-20..20).collect();
        let preds = vec![
            Predicate::eq("c", Value::Int(3)),
            Predicate::new("c", CmpOp::Lt, Value::Int(3), None),
            Predicate::new("c", CmpOp::Le, Value::Int(3), None),
            Predicate::new("c", CmpOp::Gt, Value::Int(3), None),
            Predicate::new("c", CmpOp::Ge, Value::Int(3), None),
            Predicate::new("c", CmpOp::Between, Value::Int(-5), Some(Value::Int(5))),
        ];
        for p in &preds {
            let (lo, hi) = p.key_range();
            for c in &candidates {
                let v = Value::Int(*c);
                let k = v.order_key();
                if p.matches(&v) {
                    assert!(lo <= k && k <= hi, "{p:?} value {c}");
                } else {
                    assert!(k < lo || k > hi, "{p:?} value {c} (int keys are exact)");
                }
            }
        }
    }

    #[test]
    fn float_ranges() {
        let p = Predicate::new("bmi", CmpOp::Gt, Value::Float(25.0), None);
        assert!(p.matches(&Value::Float(25.1)));
        assert!(!p.matches(&Value::Float(25.0)));
        let (lo, hi) = p.key_range();
        assert!(Value::Float(25.0001).order_key() >= lo);
        assert!(Value::Float(1e9).order_key() <= hi);
        assert!(Value::Float(25.0).order_key() < lo);
    }

    #[test]
    fn string_predicates() {
        let p = Predicate::eq("specialty", Value::Str("Psychiatrist".into()));
        assert!(p.matches(&Value::Str("Psychiatrist".into())));
        assert!(!p.matches(&Value::Str("Surgeon".into())));
    }
}
