//! Sorted ID lists on flash — the currency of every GhostDB operator.
//!
//! Climbing-index entries yield sorted sublists of IDs; `Merge` consumes and
//! produces them; Bloom filters are built from them. On flash they are
//! packed little-endian `u32` runs. A run may start at any byte offset
//! inside a shared segment (climbing-index payload areas pack thousands of
//! runs back to back); readers therefore handle arbitrary offsets and charge
//! exactly the bytes they pull through the data register.

use crate::error::StorageError;
use crate::{Id, Result, ID_BYTES};
use ghostdb_flash::{FlashDevice, PageReq, Segment, SegmentAllocator};
use ghostdb_token::{RamArena, RamBuffer};

/// A sorted run of IDs somewhere on flash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdList {
    /// Segment holding the run (possibly shared with other runs).
    pub segment: Segment,
    /// Byte offset of the first ID within the segment.
    pub byte_offset: u64,
    /// Number of IDs.
    pub count: u64,
}

impl IdList {
    /// An empty list (reads nothing).
    pub fn empty() -> Self {
        IdList {
            segment: SegmentAllocator::new(1).alloc(0).expect("zero alloc"),
            byte_offset: 0,
            count: 0,
        }
    }

    /// Bytes occupied on flash.
    pub fn bytes(&self) -> u64 {
        self.count * ID_BYTES as u64
    }
}

/// Streaming writer producing a fresh sorted ID list in its own segment.
///
/// Holds exactly **one RAM buffer** (the output buffer of §3.4's operator
/// budgets) and flushes it page by page.
#[derive(Debug)]
pub struct IdListWriter {
    segment: Segment,
    buf: RamBuffer,
    in_buf: usize,
    next_page: u64,
    count: u64,
    last: Option<Id>,
    page_size: usize,
}

impl IdListWriter {
    /// Create a writer for up to `max_ids` IDs.
    pub fn create(
        alloc: &mut SegmentAllocator,
        ram: &RamArena,
        max_ids: u64,
        page_size: usize,
    ) -> Result<Self> {
        assert_eq!(
            ram.buf_size(),
            page_size,
            "RAM buffer must equal the flash I/O unit"
        );
        let segment = alloc.alloc_bytes((max_ids * ID_BYTES as u64).max(1), page_size)?;
        Ok(IdListWriter {
            segment,
            buf: ram.alloc()?,
            in_buf: 0,
            next_page: 0,
            count: 0,
            last: None,
            page_size,
        })
    }

    /// Append an ID. IDs must arrive in non-decreasing order; duplicates are
    /// collapsed (all GhostDB lists are sets of tuple IDs).
    pub fn push(&mut self, dev: &mut FlashDevice, id: Id) -> Result<()> {
        if let Some(last) = self.last {
            if id == last {
                return Ok(());
            }
            if id < last {
                return Err(StorageError::Corrupt(format!(
                    "unsorted ID list: {id} after {last}"
                )));
            }
        }
        self.last = Some(id);
        if self.in_buf + ID_BYTES > self.page_size {
            self.flush(dev)?;
        }
        self.buf[self.in_buf..self.in_buf + ID_BYTES].copy_from_slice(&id.to_le_bytes());
        self.in_buf += ID_BYTES;
        self.count += 1;
        Ok(())
    }

    fn flush(&mut self, dev: &mut FlashDevice) -> Result<()> {
        if self.in_buf == 0 {
            return Ok(());
        }
        let lpn = self.segment.lpn(self.next_page)?;
        dev.write(lpn, &self.buf[..self.in_buf])?;
        self.next_page += 1;
        self.in_buf = 0;
        Ok(())
    }

    /// Flush and return the finished list.
    pub fn finish(mut self, dev: &mut FlashDevice) -> Result<IdList> {
        self.flush(dev)?;
        Ok(IdList {
            segment: self.segment,
            byte_offset: 0,
            count: self.count,
        })
    }

    /// The segment backing this writer (for freeing temporaries).
    pub fn segment(&self) -> Segment {
        self.segment
    }
}

/// Streaming reader over an [`IdList`], holding one RAM buffer.
#[derive(Debug)]
pub struct IdListReader {
    list: IdList,
    buf: RamBuffer,
    /// Page of the segment currently in the buffer, if any.
    buffered_page: Option<u64>,
    /// Next element index to deliver.
    pos: u64,
    page_size: usize,
    /// One-element lookahead for `peek`.
    lookahead: Option<Id>,
}

impl IdListReader {
    /// Open a reader (acquires one RAM buffer).
    pub fn open(list: IdList, ram: &RamArena, page_size: usize) -> Result<Self> {
        assert_eq!(ram.buf_size(), page_size);
        Ok(IdListReader {
            list,
            buf: ram.alloc()?,
            buffered_page: None,
            pos: 0,
            page_size,
            lookahead: None,
        })
    }

    /// Total IDs in the underlying list.
    pub fn count(&self) -> u64 {
        self.list.count
    }

    /// IDs not yet delivered (including any lookahead).
    pub fn remaining(&self) -> u64 {
        self.list.count - self.pos + self.lookahead.is_some() as u64
    }

    fn load_id(&mut self, dev: &mut FlashDevice, idx: u64) -> Result<Id> {
        let byte = self.list.byte_offset + idx * ID_BYTES as u64;
        let page = byte / self.page_size as u64;
        let off = (byte % self.page_size as u64) as usize;
        if self.buffered_page != Some(page) {
            // Pull the relevant part of the page: from this ID to the end of
            // the page or the end of the run, whichever comes first.
            let run_end = self.list.byte_offset + self.list.bytes();
            let page_end = (page + 1) * self.page_size as u64;
            let want = (run_end.min(page_end) - byte) as usize;
            let lpn = self.list.segment.lpn(page)?;
            // Read into the buffer aligned at `off` so in-page offsets match.
            dev.read(lpn, off, &mut self.buf[off..off + want])?;
            self.buffered_page = Some(page);
        }
        Ok(Id::from_le_bytes(
            self.buf[off..off + ID_BYTES].try_into().expect("4 bytes"),
        ))
    }

    /// Next ID, or `None` at the end.
    pub fn next_id(&mut self, dev: &mut FlashDevice) -> Result<Option<Id>> {
        if let Some(id) = self.lookahead.take() {
            return Ok(Some(id));
        }
        if self.pos >= self.list.count {
            return Ok(None);
        }
        let id = self.load_id(dev, self.pos)?;
        self.pos += 1;
        Ok(Some(id))
    }

    /// Peek at the next ID without consuming it.
    pub fn peek(&mut self, dev: &mut FlashDevice) -> Result<Option<Id>> {
        if self.lookahead.is_none() {
            self.lookahead = self.next_id(dev)?;
        }
        Ok(self.lookahead)
    }

    /// Drain the whole list into a vector (test/debug helper; costs the same
    /// I/O as streaming).
    pub fn drain(mut self, dev: &mut FlashDevice) -> Result<Vec<Id>> {
        let mut out = Vec::with_capacity(self.remaining() as usize);
        while let Some(id) = self.next_id(dev)? {
            out.push(id);
        }
        Ok(out)
    }
}

/// Prime a group of readers with one vectored flash read.
///
/// Each reader that has neither a lookahead nor its next page buffered
/// contributes one [`PageReq`] computed **exactly** as its own `load_id`
/// would; the requests are issued as a single [`FlashDevice::read_batch_into`]
/// so reads landing on different chips overlap on the channel clock. The
/// handle-local counters receive the summed per-request delta, so the I/O
/// accounting is bit-identical to each reader faulting its page in serially —
/// only the side-band overlap clock differs. With fewer than two pages to
/// fetch this is a no-op (nothing to overlap; the readers fault in lazily as
/// before).
pub fn prime_readers(dev: &mut FlashDevice, readers: &mut [&mut IdListReader]) -> Result<()> {
    // (reader index, page, in-page offset, bytes wanted) per pending fetch.
    let mut pending: Vec<(usize, u64, usize, usize)> = Vec::new();
    let mut reqs: Vec<PageReq> = Vec::new();
    for (i, r) in readers.iter().enumerate() {
        if r.lookahead.is_some() || r.pos >= r.list.count {
            continue;
        }
        let byte = r.list.byte_offset + r.pos * ID_BYTES as u64;
        let page = byte / r.page_size as u64;
        if r.buffered_page == Some(page) {
            continue;
        }
        let off = (byte % r.page_size as u64) as usize;
        let run_end = r.list.byte_offset + r.list.bytes();
        let page_end = (page + 1) * r.page_size as u64;
        let want = (run_end.min(page_end) - byte) as usize;
        let lpn = r.list.segment.lpn(page)?;
        pending.push((i, page, off, want));
        reqs.push(PageReq {
            lpn,
            offset: off,
            len: want,
        });
    }
    if reqs.len() < 2 {
        return Ok(());
    }
    {
        // Disjoint mutable buffer slices, in `pending` order (ascending i).
        let mut outs: Vec<&mut [u8]> = Vec::with_capacity(pending.len());
        let mut rest: &mut [&mut IdListReader] = readers;
        let mut consumed = 0usize;
        for &(i, _, off, want) in &pending {
            let (_, tail) = std::mem::take(&mut rest).split_at_mut(i - consumed);
            let (head, tail) = tail.split_first_mut().expect("index in range");
            outs.push(&mut head.buf[off..off + want]);
            rest = tail;
            consumed = i + 1;
        }
        dev.read_batch_into(&reqs, &mut outs)?;
    }
    for &(i, page, _, _) in &pending {
        readers[i].buffered_page = Some(page);
    }
    Ok(())
}

/// First index in `hay[from..]` whose value is ≥ `needle`, found by
/// galloping (exponential probe then binary search). Cost is
/// `O(log distance)` instead of `O(distance)`, which is what makes skewed
/// intersections cheap: the smaller list drives, the bigger one is skipped
/// over in leaps.
#[inline]
fn gallop_to(hay: &[Id], from: usize, needle: Id) -> usize {
    if from >= hay.len() || hay[from] >= needle {
        return from;
    }
    let mut step = 1usize;
    let mut lo = from;
    while lo + step < hay.len() && hay[lo + step] < needle {
        lo += step;
        step <<= 1;
    }
    let hi = (lo + step + 1).min(hay.len());
    lo + 1 + hay[lo + 1..hi].partition_point(|v| *v < needle)
}

/// Intersection of two sorted, duplicate-free ID runs by galloping: the
/// shorter run drives, the longer is leapt over exponentially. Host-side
/// only — flash-resident runs go through the streaming `Merge` machinery,
/// which charges I/O.
pub fn intersect_sorted(a: &[Id], b: &[Id]) -> Vec<Id> {
    let (drive, other) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(drive.len());
    let mut at = 0usize;
    for &x in drive {
        at = gallop_to(other, at, x);
        if at >= other.len() {
            break;
        }
        if other[at] == x {
            out.push(x);
            at += 1;
        }
    }
    out
}

/// Union of two sorted ID runs, duplicates collapsed. Linear two-pointer
/// merge with a bulk tail copy.
pub fn union_sorted(a: &[Id], b: &[Id]) -> Vec<Id> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        let v = x.min(y);
        if x == v {
            i += 1;
        }
        if y == v {
            j += 1;
        }
        if out.last() != Some(&v) {
            out.push(v);
        }
    }
    for &v in &a[i..] {
        if out.last() != Some(&v) {
            out.push(v);
        }
    }
    for &v in &b[j..] {
        if out.last() != Some(&v) {
            out.push(v);
        }
    }
    out
}

/// Write a host-side slice of sorted IDs as a fresh list (bulk-load paths
/// and tests). Charges normal sequential write I/O.
pub fn write_id_list(
    dev: &mut FlashDevice,
    alloc: &mut SegmentAllocator,
    ram: &RamArena,
    ids: &[Id],
) -> Result<IdList> {
    let mut w = IdListWriter::create(alloc, ram, ids.len() as u64, dev.page_size())?;
    for id in ids {
        w.push(dev, *id)?;
    }
    w.finish(dev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghostdb_flash::{FlashGeometry, FlashTiming};

    fn setup() -> (FlashDevice, SegmentAllocator, RamArena) {
        let dev = FlashDevice::new(
            FlashGeometry::for_capacity(4 * 1024 * 1024),
            FlashTiming::default(),
        );
        let alloc = SegmentAllocator::new(dev.logical_pages());
        let ram = RamArena::paper_default();
        (dev, alloc, ram)
    }

    #[test]
    fn roundtrip_multi_page() {
        let (mut dev, mut alloc, ram) = setup();
        let ids: Vec<Id> = (0..3000).map(|i| i * 3).collect();
        let list = write_id_list(&mut dev, &mut alloc, &ram, &ids).unwrap();
        assert_eq!(list.count, 3000);
        let r = IdListReader::open(list, &ram, dev.page_size()).unwrap();
        assert_eq!(r.drain(&mut dev).unwrap(), ids);
    }

    #[test]
    fn duplicates_collapse_and_unsorted_rejected() {
        let (mut dev, mut alloc, ram) = setup();
        let mut w = IdListWriter::create(&mut alloc, &ram, 10, dev.page_size()).unwrap();
        w.push(&mut dev, 5).unwrap();
        w.push(&mut dev, 5).unwrap();
        w.push(&mut dev, 6).unwrap();
        assert!(w.push(&mut dev, 4).is_err());
        let list = w.finish(&mut dev).unwrap();
        assert_eq!(list.count, 2);
    }

    #[test]
    fn peek_does_not_consume() {
        let (mut dev, mut alloc, ram) = setup();
        let list = write_id_list(&mut dev, &mut alloc, &ram, &[1, 2, 3]).unwrap();
        let mut r = IdListReader::open(list, &ram, dev.page_size()).unwrap();
        assert_eq!(r.peek(&mut dev).unwrap(), Some(1));
        assert_eq!(r.peek(&mut dev).unwrap(), Some(1));
        assert_eq!(r.next_id(&mut dev).unwrap(), Some(1));
        assert_eq!(r.next_id(&mut dev).unwrap(), Some(2));
        assert_eq!(r.remaining(), 1);
    }

    #[test]
    fn unaligned_run_reads_correctly() {
        let (mut dev, mut alloc, ram) = setup();
        // Lay two runs back to back in one shared segment, second one
        // starting mid-page.
        let page = dev.page_size();
        let seg = alloc.alloc(4).unwrap();
        let ids_a: Vec<Id> = (100..600).collect(); // 2000 bytes
        let ids_b: Vec<Id> = (7000..7600).collect(); // 2400 bytes
        let mut raw: Vec<u8> = Vec::new();
        for id in ids_a.iter().chain(&ids_b) {
            raw.extend_from_slice(&id.to_le_bytes());
        }
        for (i, chunk) in raw.chunks(page).enumerate() {
            dev.write(seg.lpn(i as u64).unwrap(), chunk).unwrap();
        }
        let run_b = IdList {
            segment: seg,
            byte_offset: ids_a.len() as u64 * 4,
            count: ids_b.len() as u64,
        };
        let r = IdListReader::open(run_b, &ram, page).unwrap();
        assert_eq!(r.drain(&mut dev).unwrap(), ids_b);
    }

    #[test]
    fn reader_charges_exact_bytes() {
        let (mut dev, mut alloc, ram) = setup();
        let ids: Vec<Id> = (0..1000).collect(); // 4000 bytes: 1 full page + 1952
        let list = write_id_list(&mut dev, &mut alloc, &ram, &ids).unwrap();
        let snap = dev.snapshot();
        let r = IdListReader::open(list, &ram, dev.page_size()).unwrap();
        r.drain(&mut dev).unwrap();
        let d = dev.stats_since(&snap);
        assert_eq!(d.pages_read, 2);
        assert_eq!(d.bytes_to_ram, 4000);
    }

    #[test]
    fn prime_readers_matches_serial_peeks_on_counters_and_values() {
        let dev = FlashDevice::with_chips(
            FlashGeometry::for_capacity(4 * 1024 * 1024),
            FlashTiming::default(),
            4,
        );
        let mut build = dev.fork();
        let mut alloc = SegmentAllocator::with_chips(dev.logical_pages(), 4);
        let ram = RamArena::paper_default();
        let lists: Vec<IdList> = (0..5u32)
            .map(|k| {
                let ids: Vec<Id> = (0..700).map(|i| i * 2 + k).collect();
                write_id_list(&mut build, &mut alloc, &ram, &ids).unwrap()
            })
            .collect();

        // Serial reference: peek each reader one by one.
        let mut serial_dev = dev.fork();
        let mut serial: Vec<IdListReader> = lists
            .iter()
            .map(|l| IdListReader::open(*l, &ram, dev.page_size()).unwrap())
            .collect();
        let serial_snap = serial_dev.snapshot();
        let serial_peeks: Vec<Option<Id>> = serial
            .iter_mut()
            .map(|r| r.peek(&mut serial_dev).unwrap())
            .collect();
        let serial_delta = serial_dev.stats_since(&serial_snap);

        // Batched: prime all readers at once, then peek (no further I/O).
        let mut batch_dev = dev.fork();
        let mut batch: Vec<IdListReader> = lists
            .iter()
            .map(|l| IdListReader::open(*l, &ram, dev.page_size()).unwrap())
            .collect();
        let batch_snap = batch_dev.snapshot();
        {
            let mut refs: Vec<&mut IdListReader> = batch.iter_mut().collect();
            prime_readers(&mut batch_dev, &mut refs).unwrap();
        }
        let primed_delta = batch_dev.stats_since(&batch_snap);
        let batch_peeks: Vec<Option<Id>> = batch
            .iter_mut()
            .map(|r| r.peek(&mut batch_dev).unwrap())
            .collect();
        let batch_delta = batch_dev.stats_since(&batch_snap);

        assert_eq!(batch_peeks, serial_peeks);
        // Priming already did all the I/O, and exactly the serial amount.
        assert_eq!(primed_delta, batch_delta);
        assert_eq!(batch_delta, serial_delta);

        // Priming again is free (pages buffered), as is priming readers that
        // hold a lookahead.
        {
            let mut refs: Vec<&mut IdListReader> = batch.iter_mut().collect();
            prime_readers(&mut batch_dev, &mut refs).unwrap();
        }
        assert_eq!(batch_dev.stats_since(&batch_snap), batch_delta);

        // Full drains still agree after mixed priming.
        for (s, b) in serial.into_iter().zip(batch) {
            assert_eq!(
                b.drain(&mut batch_dev).unwrap(),
                s.drain(&mut serial_dev).unwrap()
            );
        }
    }

    #[test]
    fn empty_list_reads_nothing() {
        let (mut dev, _alloc, ram) = setup();
        let r = IdListReader::open(IdList::empty(), &ram, dev.page_size()).unwrap();
        assert_eq!(r.drain(&mut dev).unwrap(), Vec::<Id>::new());
    }

    /// Reference two-pointer set ops for the galloping equivalence checks.
    fn naive_intersect(a: &[Id], b: &[Id]) -> Vec<Id> {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }

    #[test]
    fn galloping_intersect_matches_two_pointer() {
        let cases: Vec<(Vec<Id>, Vec<Id>)> = vec![
            (vec![], vec![1, 2, 3]),
            (vec![5], vec![1, 2, 3, 4, 5, 6]),
            (vec![1, 2, 3], vec![4, 5, 6]),
            ((0..1000).collect(), (0..1000).map(|i| i * 7).collect()),
            // Skewed: tiny driver, huge other — the galloping sweet spot.
            (
                vec![3, 999, 50_000, 123_456],
                (0..200_000).map(|i| i * 2).collect(),
            ),
            (
                (0..5000).map(|i| i * 3).collect(),
                (0..5000).map(|i| i * 5).collect(),
            ),
        ];
        for (a, b) in cases {
            assert_eq!(intersect_sorted(&a, &b), naive_intersect(&a, &b));
            assert_eq!(intersect_sorted(&b, &a), naive_intersect(&a, &b));
        }
    }

    #[test]
    fn union_sorted_collapses_duplicates() {
        assert_eq!(union_sorted(&[], &[]), Vec::<Id>::new());
        assert_eq!(union_sorted(&[1, 2, 2, 3], &[]), vec![1, 2, 3]);
        assert_eq!(
            union_sorted(&[1, 3, 5], &[2, 3, 4, 6]),
            vec![1, 2, 3, 4, 5, 6]
        );
        let a: Vec<Id> = (0..1000).map(|i| i * 2).collect();
        let b: Vec<Id> = (0..1000).map(|i| i * 3).collect();
        let mut expect: Vec<Id> = a.iter().chain(&b).copied().collect();
        expect.sort_unstable();
        expect.dedup();
        assert_eq!(union_sorted(&a, &b), expect);
    }

    #[test]
    fn writer_respects_ram_budget() {
        let (dev, mut alloc, _ram) = setup();
        let tiny_ram = RamArena::new(dev.page_size(), 1);
        let w = IdListWriter::create(&mut alloc, &tiny_ram, 10, dev.page_size()).unwrap();
        // Arena exhausted: a reader cannot open concurrently.
        let list = IdList::empty();
        assert!(IdListReader::open(list, &tiny_ram, dev.page_size()).is_err());
        drop(w);
        assert!(IdListReader::open(list, &tiny_ram, dev.page_size()).is_ok());
        let _ = dev;
    }
}
