//! # ghostdb-storage
//!
//! The storage engine running *inside* the secure token, on top of the
//! simulated flash device:
//!
//! * [`schema`] — table definitions with per-column `HIDDEN` visibility and
//!   the tree-structured schema model of paper §3 (a root table and node
//!   tables connected by key/foreign-key edges);
//! * [`value`] / [`row`] — fixed-width value encodings and record codecs
//!   (GhostDB schemas declare byte widths: `char(200)`, 4-byte IDs, …);
//! * [`idlist`] — sorted lists of tuple IDs packed on flash, the currency of
//!   every GhostDB operator, with streaming RAM-buffered readers/writers;
//! * [`table`] — the columnar hidden image `TiH` of each table (hidden
//!   columns sorted by tuple id) plus generic multi-column flash tables used
//!   for SKTs and materialised intermediates;
//! * [`btree`] — a bulk-loaded B+-tree over flash pages, the value-lookup
//!   layer of climbing indexes (one RAM buffer pinned per level, exactly the
//!   budget §3.4 gives the `CI` operator).
//!
//! Every read and write goes through the flash device and the RAM arena, so
//! the I/O counters and the simulated clock reflect precisely what the
//! GhostDB hardware would do.

pub mod btree;
pub mod error;
pub mod idlist;
pub mod pred;
pub mod row;
pub mod schema;
pub mod table;
pub mod value;

pub use error::StorageError;
pub use idlist::{prime_readers, IdList, IdListReader, IdListWriter};
pub use pred::{CmpOp, Predicate};
pub use schema::{Column, ForeignKey, SchemaTree, TableDef, TableId, Visibility};
pub use table::{FlashTable, HiddenColumn, HiddenImage};
pub use value::{ColumnType, Value};

/// Result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;

/// A tuple identifier (the paper's 4-byte surrogate `id`).
pub type Id = u32;

/// Width in bytes of an encoded [`Id`] on flash and on the wire.
pub const ID_BYTES: usize = 4;
