//! Error type for the storage engine.

use std::fmt;

/// Errors surfaced by the storage engine.
#[derive(Debug, Clone, PartialEq)]
pub enum StorageError {
    /// Propagated flash error.
    Flash(ghostdb_flash::FlashError),
    /// Propagated token error (RAM exhaustion etc.).
    Token(ghostdb_token::TokenError),
    /// Schema validation failure (not a tree, dangling foreign key, …).
    Schema(String),
    /// Value does not match the declared column type.
    TypeMismatch {
        /// Column the value was destined for.
        column: String,
        /// What was expected.
        expected: &'static str,
    },
    /// Row id outside the table.
    RowOutOfRange {
        /// Requested row.
        row: u64,
        /// Table cardinality.
        rows: u64,
    },
    /// Unknown table or column name.
    Unknown(String),
    /// Corrupt or inconsistent on-flash structure (bulk-load order
    /// violation, bad node type, …).
    Corrupt(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Flash(e) => write!(f, "flash: {e}"),
            StorageError::Token(e) => write!(f, "token: {e}"),
            StorageError::Schema(msg) => write!(f, "schema: {msg}"),
            StorageError::TypeMismatch { column, expected } => {
                write!(f, "type mismatch for column {column}: expected {expected}")
            }
            StorageError::RowOutOfRange { row, rows } => {
                write!(f, "row {row} out of range (table has {rows} rows)")
            }
            StorageError::Unknown(name) => write!(f, "unknown object: {name}"),
            StorageError::Corrupt(msg) => write!(f, "corrupt structure: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Flash(e) => Some(e),
            StorageError::Token(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ghostdb_flash::FlashError> for StorageError {
    fn from(e: ghostdb_flash::FlashError) -> Self {
        StorageError::Flash(e)
    }
}

impl From<ghostdb_token::TokenError> for StorageError {
    fn from(e: ghostdb_token::TokenError) -> Self {
        StorageError::Token(e)
    }
}
