//! # ghostdb-reference
//!
//! A deliberately naive, fully trusted, in-memory Select-Project-Join
//! evaluator with the same root-anchored semantics as the GhostDB executor.
//! It is the **correctness oracle**: integration and property tests run the
//! same query through GhostDB (with all its indexes, Bloom filters and
//! RAM-bounded operators) and through this engine, and require identical
//! results.

use ghostdb_storage::{Predicate, Result, SchemaTree, StorageError, TableId, Value};
use std::collections::HashMap;

/// One table's raw data.
#[derive(Debug, Clone, Default)]
pub struct RefTable {
    /// Cardinality.
    pub rows: u64,
    /// Foreign keys: column → child id per row.
    pub fks: HashMap<String, Vec<u32>>,
    /// All non-key columns (visible and hidden alike — this engine is
    /// trusted).
    pub columns: HashMap<String, Vec<Value>>,
}

/// The reference database.
#[derive(Debug, Clone)]
pub struct RefDb {
    /// Schema (shared with the system under test).
    pub schema: SchemaTree,
    /// Raw tables, indexed by [`TableId`].
    pub tables: Vec<RefTable>,
}

/// A reference query: conjunctive predicates + projections, root-anchored.
#[derive(Debug, Clone, Default)]
pub struct RefQuery {
    /// Predicates as (table, predicate).
    pub predicates: Vec<(TableId, Predicate)>,
    /// Projections as (table, column); `"id"` projects the surrogate.
    pub projections: Vec<(TableId, String)>,
}

impl RefDb {
    /// For a root row, the id of the joining row in `target` (fk chains).
    fn join_id(&self, root_row: u32, target: TableId) -> Result<u32> {
        let root = self.schema.root();
        if target == root {
            return Ok(root_row);
        }
        // Path root → … → target.
        let mut path = vec![target];
        let mut cur = target;
        while let Some(p) = self.schema.parent(cur) {
            path.push(p);
            cur = p;
        }
        path.reverse();
        let mut id = root_row;
        for edge in path.windows(2) {
            let parent_def = self.schema.def(edge[0]);
            let fk = parent_def
                .foreign_keys
                .iter()
                .find(|f| self.schema.table_id(&f.references).ok() == Some(edge[1]))
                .ok_or_else(|| StorageError::Schema("missing fk".into()))?;
            id = self.tables[edge[0]].fks[&fk.column][id as usize];
        }
        Ok(id)
    }

    /// Value of `(table, column)` for a root row.
    fn value(&self, root_row: u32, t: TableId, column: &str) -> Result<Value> {
        let id = self.join_id(root_row, t)?;
        if column == "id" {
            return Ok(Value::Int(id as i64));
        }
        let col = self.tables[t]
            .columns
            .get(column)
            .ok_or_else(|| StorageError::Unknown(column.to_string()))?;
        Ok(col[id as usize].clone())
    }

    /// Evaluate a query: one output row per surviving root tuple, in root
    /// id order.
    pub fn run(&self, q: &RefQuery) -> Result<Vec<Vec<Value>>> {
        let root = self.schema.root();
        let mut out = Vec::new();
        'rows: for r in 0..self.tables[root].rows as u32 {
            for (t, p) in &q.predicates {
                let v = self.value(r, *t, &p.column)?;
                if !p.matches(&v) {
                    continue 'rows;
                }
            }
            let row = q
                .projections
                .iter()
                .map(|(t, c)| self.value(r, *t, c))
                .collect::<Result<Vec<_>>>()?;
            out.push(row);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghostdb_storage::schema::paper_synthetic_schema;
    use ghostdb_storage::CmpOp;

    fn tiny() -> RefDb {
        let schema = paper_synthetic_schema(1, 1);
        let names = ["T0", "T1", "T2", "T11", "T12"];
        let card = [40u64, 20, 10, 5, 4];
        let mut tables = vec![RefTable::default(); schema.len()];
        for (n, c) in names.iter().zip(card) {
            let t = schema.table_id(n).unwrap();
            tables[t].rows = c;
            tables[t].columns.insert(
                "v1".into(),
                (0..c).map(|i| Value::Str(format!("{i:08}"))).collect(),
            );
            tables[t].columns.insert(
                "h1".into(),
                (0..c)
                    .map(|i| Value::Str(format!("{:08}", i % 3)))
                    .collect(),
            );
        }
        let t0 = schema.table_id("T0").unwrap();
        let t1 = schema.table_id("T1").unwrap();
        tables[t0]
            .fks
            .insert("fk1".into(), (0..40).map(|i| (i % 20) as u32).collect());
        tables[t0]
            .fks
            .insert("fk2".into(), (0..40).map(|i| (i % 10) as u32).collect());
        tables[t1]
            .fks
            .insert("fk11".into(), (0..20).map(|i| (i % 5) as u32).collect());
        tables[t1]
            .fks
            .insert("fk12".into(), (0..20).map(|i| (i % 4) as u32).collect());
        RefDb { schema, tables }
    }

    #[test]
    fn join_chain_resolution() {
        let db = tiny();
        let t12 = db.schema.table_id("T12").unwrap();
        // root 37 → T1 17 → T12 1.
        assert_eq!(db.join_id(37, t12).unwrap(), 1);
    }

    #[test]
    fn filtered_projection() {
        let db = tiny();
        let t0 = db.schema.table_id("T0").unwrap();
        let t12 = db.schema.table_id("T12").unwrap();
        let q = RefQuery {
            predicates: vec![(t12, Predicate::eq("h1", Value::Str("00000001".into())))],
            projections: vec![(t0, "id".into()), (t12, "id".into())],
        };
        let rows = db.run(&q).unwrap();
        assert!(!rows.is_empty());
        for row in rows {
            let Value::Int(r) = row[0] else { panic!() };
            let t1 = (r % 20) as u32;
            let t12v = t1 % 4;
            assert_eq!(row[1], Value::Int(t12v as i64));
            assert_eq!(t12v % 3, 1);
        }
    }

    #[test]
    fn range_predicate() {
        let db = tiny();
        let t0 = db.schema.table_id("T0").unwrap();
        let q = RefQuery {
            predicates: vec![(
                t0,
                Predicate::new("v1", CmpOp::Lt, Value::Str("00000005".into()), None),
            )],
            projections: vec![(t0, "id".into())],
        };
        assert_eq!(db.run(&q).unwrap().len(), 5);
    }
}
