//! Offline stub of `serde`.
//!
//! The workspace only ever *derives* `Serialize` / `Deserialize` (no code
//! serializes anything yet), so the traits are empty markers and the derives
//! are no-ops that emit empty impls. See `vendor/README.md`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize {}
