//! Value-generation strategies (sampling only — no shrinking).

use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// A generator of random values of type `Self::Value`.
///
/// Unlike real proptest there is no intermediate value tree: a strategy just
/// samples a value from the test RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every sampled value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over every value of `T` (see [`Arbitrary`]).
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `proptest::prelude::any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy range is empty");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Strategy returned by [`crate::option::of`].
pub struct OptionStrategy<S> {
    pub(crate) inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.next_u64() & 1 == 0 {
            None
        } else {
            Some(self.inner.sample(rng))
        }
    }
}

/// Length bounds for [`crate::collection::vec`] (half-open).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "vec size range is empty");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy returned by [`crate::collection::vec`].
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Uniform choice between boxed strategies ([`crate::prop_oneof!`]).
pub struct Union<V> {
    variants: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Build from the (non-empty) list of variants.
    pub fn new(variants: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!variants.is_empty(), "prop_oneof! needs at least one arm");
        Union { variants }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let idx = (rng.next_u64() % self.variants.len() as u64) as usize;
        self.variants[idx].sample(rng)
    }
}
