//! Offline stub of `proptest`.
//!
//! Implements the subset of the proptest 1.x API the workspace tests use:
//! the `proptest!` / `prop_oneof!` / `prop_assert*!` / `prop_assume!`
//! macros, the [`strategy::Strategy`] trait with `prop_map`, range / tuple /
//! `any` / `option::of` / `collection::vec` strategies, and a deterministic
//! seeded runner honouring the `PROPTEST_CASES` environment variable (which
//! here overrides even explicit `with_cases` counts, so CI can deepen every
//! suite at once). There is **no shrinking**: a failing case panics with the
//! `Debug` rendering of its inputs. See `vendor/README.md`.

pub mod strategy;
pub mod test_runner;

/// `proptest::option` — strategies over `Option<T>`.
pub mod option {
    use crate::strategy::{OptionStrategy, Strategy};

    /// Strategy for `Option<S::Value>`: ~50% `None`, ~50% `Some(sample)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// `proptest::collection` — strategies over collections.
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Everything the tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests. Mirrors `proptest::proptest!`:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0u32..100, ys in proptest::collection::vec(any::<u8>(), 1..9)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] — not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                $crate::test_runner::run_cases(&__config, stringify!($name), |__rng| {
                    let mut __inputs: ::std::vec::Vec<::std::string::String> =
                        ::std::vec::Vec::new();
                    $(
                        let __value = $crate::strategy::Strategy::sample(&($strat), __rng);
                        __inputs.push(format!("{} = {:?}", stringify!($arg), &__value));
                        let $arg = __value;
                    )+
                    let __case = || -> $crate::test_runner::TestCaseResult {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    let __outcome =
                        ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(__case));
                    $crate::test_runner::attach_inputs(__outcome, &__inputs)
                });
            }
        )*
    };
}

/// Choose uniformly between several strategies with the same `Value` type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {{
        let mut __variants: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = ::std::vec::Vec::new();
        $(__variants.push(::std::boxed::Box::new($s));)+
        $crate::strategy::Union::new(__variants)
    }};
}

/// Assert inside a property; failure reports the case instead of panicking
/// through the harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        $crate::prop_assert_eq!($left, $right, "")
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left == right` ({})\n  left: {:?}\n right: {:?}",
                format!($($fmt)*),
                __l,
                __r,
            )));
        }
    }};
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        $crate::prop_assert_ne!($left, $right, "")
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left != right` ({})\n  both: {:?}",
                format!($($fmt)*),
                __l,
            )));
        }
    }};
}

/// Discard the current case unless `cond` holds (counts as a rejection, not
/// a pass).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
