//! Deterministic case runner for the [`crate::proptest!`] macro.

use std::fmt;

/// Runner configuration (only the case count is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of *accepted* cases each property must pass.
    pub cases: u32,
}

/// The `PROPTEST_CASES` environment override, like real proptest's
/// env-driven config. Unlike upstream it also overrides explicit
/// [`ProptestConfig::with_cases`] counts, so a CI job can deepen every
/// suite (`PROPTEST_CASES=1024 cargo test …`) without code changes; the
/// in-source count is the default when the variable is unset or garbage.
fn env_cases() -> Option<u32> {
    // A zero (or unparsable) override is ignored rather than letting every
    // suite pass vacuously with no cases executed.
    std::env::var("PROPTEST_CASES")
        .ok()?
        .parse()
        .ok()
        .filter(|&c| c > 0)
}

impl ProptestConfig {
    /// Config running `cases` cases per property (`PROPTEST_CASES` wins
    /// when set — see the private `env_cases` helper).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases: env_cases().unwrap_or(cases),
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig::with_cases(256)
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property is violated — the whole test fails.
    Fail(String),
    /// The inputs do not satisfy a `prop_assume!` — the case is discarded.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

/// Per-case outcome used by generated test bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic test RNG (SplitMix64 seeded from the test name + case
/// index), so `cargo test` is reproducible run-to-run with no seed files.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case `case` of the test named `name`.
    pub fn deterministic(name: &str, case: u64) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Post-process one case outcome for the `proptest!` macro: rewrite a body
/// panic into a [`TestCaseError::Fail`] and append the `Debug` rendering of
/// the sampled inputs to any failure, so the runner's panic names the case
/// that broke.
pub fn attach_inputs(
    outcome: std::thread::Result<TestCaseResult>,
    inputs: &[String],
) -> TestCaseResult {
    let result = match outcome {
        Ok(r) => r,
        Err(payload) => {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            Err(TestCaseError::Fail(format!("body panicked: {msg}")))
        }
    };
    result.map_err(|e| match e {
        TestCaseError::Fail(m) => {
            TestCaseError::Fail(format!("{m}\n  inputs: {}", inputs.join(", ")))
        }
        reject => reject,
    })
}

/// Drive one property: sample cases until `config.cases` pass, panicking on
/// the first failure. Rejections retry with fresh inputs, up to a cap.
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let max_rejects = config.cases as u64 * 16 + 1024;
    let mut accepted = 0u32;
    let mut rejected = 0u64;
    let mut index = 0u64;
    while accepted < config.cases {
        let mut rng = TestRng::deterministic(name, index);
        index += 1;
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "{name}: too many rejected cases ({rejected}) — weaken prop_assume!"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: case #{} failed: {msg}", index - 1)
            }
        }
    }
}
