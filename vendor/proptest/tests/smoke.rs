//! Behavioral smoke tests of the proptest stub itself: the macros compile,
//! cases are deterministic, and failures report the sampled inputs.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn ranges_and_tuples_respect_bounds(
        x in 5u32..10,
        y in 0usize..=3,
        (a, b) in (0u64..4, any::<bool>()),
        v in proptest::collection::vec(0u8..7, 1..5),
        o in proptest::option::of(1u16..9),
    ) {
        prop_assert!((5..10).contains(&x));
        prop_assert!(y <= 3);
        prop_assert!(a < 4);
        let _ = b;
        prop_assert!(!v.is_empty() && v.len() < 5 && v.iter().all(|e| *e < 7));
        if let Some(i) = o {
            prop_assert!((1..9).contains(&i));
        }
    }

    #[test]
    fn oneof_and_map_compose(
        n in prop_oneof![
            (0u32..10).prop_map(|v| v * 2),
            (100u32..110).prop_map(|v| v + 1),
        ],
    ) {
        prop_assert!(n < 20 || (101..111).contains(&n), "n = {n}");
    }
}

// No `#[test]` attribute: `proptest!` emits plain functions we can invoke
// under `catch_unwind` to observe the failure path.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    fn always_fails(x in 0u32..10) {
        prop_assert!(x > 100, "boom");
    }

    fn body_panics(x in 0u32..10) {
        // Not `panic!` as the tail statement: the macro appends `Ok(())`,
        // which must stay statically reachable.
        if x < 10 {
            panic!("deliberate");
        }
    }
}

fn panic_message(f: impl Fn() + std::panic::UnwindSafe) -> String {
    let payload = std::panic::catch_unwind(f).expect_err("property must fail");
    match payload.downcast_ref::<String>() {
        Some(s) => s.clone(),
        None => payload
            .downcast_ref::<&str>()
            .expect("panic msg")
            .to_string(),
    }
}

#[test]
fn failing_case_reports_its_inputs() {
    let msg = panic_message(always_fails);
    assert!(msg.contains("boom"), "assertion message surfaces: {msg}");
    assert!(msg.contains("inputs: x = "), "inputs are echoed: {msg}");
}

#[test]
fn body_panic_is_caught_and_reports_inputs() {
    let msg = panic_message(body_panics);
    assert!(msg.contains("body panicked"), "panic is rewritten: {msg}");
    assert!(msg.contains("inputs: x = "), "inputs are echoed: {msg}");
}

#[test]
fn failures_are_deterministic_run_to_run() {
    assert_eq!(panic_message(always_fails), panic_message(always_fails));
}

#[test]
fn rejections_resample_instead_of_failing() {
    // Assume away half the space; the runner must still accept 32 cases.
    proptest::test_runner::run_cases(&ProptestConfig::with_cases(32), "reject_half", |rng| {
        let x = proptest::strategy::Strategy::sample(&(0u32..100), rng);
        if x % 2 == 0 {
            return Err(TestCaseError::reject("even"));
        }
        Ok(())
    });
}
