//! Offline stub of `criterion` 0.5.
//!
//! Provides the structural API the workspace benches use — groups,
//! `bench_function`, `Bencher::{iter, iter_batched}`, the `criterion_group!`
//! and `criterion_main!` macros — backed by a simple wall-clock harness:
//! each benchmark runs `sample_size` samples and reports the fastest and
//! median per-iteration time. No statistics, plots or baselines; see
//! `vendor/README.md`.

use std::time::{Duration, Instant};

/// Opaque value barrier (re-export of `std::hint::black_box`).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How `iter_batched` amortises setup cost. The stub runs one routine call
/// per setup call regardless of the variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per routine invocation.
    PerIteration,
}

/// Benchmark harness entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Run one benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into(), self.sample_size, &mut f);
        self
    }
}

/// A named set of benchmarks sharing the parent [`Criterion`] settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark inside this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_bench(&full, self.criterion.sample_size, &mut f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, f: &mut F) {
    let mut bencher = Bencher {
        sample_size,
        samples: Vec::new(),
    };
    f(&mut bencher);
    let mut samples = bencher.samples;
    if samples.is_empty() {
        println!("bench {id:50} (no samples)");
        return;
    }
    samples.sort_unstable();
    let best = samples[0];
    let median = samples[samples.len() / 2];
    println!(
        "bench {id:50} fastest {:>12?}  median {:>12?}  ({} samples)",
        best,
        median,
        samples.len()
    );
}

/// Runs the measured routine and records per-iteration timings.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measure `routine` (called once per sample).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up iteration.
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Measure `routine` on fresh inputs produced by `setup` (setup time is
    /// not counted).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// Declare a group function the way criterion does.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
