//! Offline stub of `rand` 0.8 — just enough surface for the workspace.
//!
//! `SmallRng` is SplitMix64 (fast, solid 64-bit mixing, trivially seedable),
//! not the real crate's xoshiro; see `vendor/README.md` for the
//! determinism caveats.

/// Core RNG interface: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling interface.
pub trait Rng: RngCore {
    /// Sample uniformly from a range, e.g. `rng.gen_range(0..n)`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli trial with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that `Rng::gen_range` can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one uniform sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = self.start + (unit as $t) * (self.end - self.start);
                // `unit as $t` (f32) or the multiply-add can round up to
                // `end`; the range contract is half-open.
                if v < self.end {
                    v
                } else {
                    self.end.next_down().max(self.start)
                }
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// Concrete RNGs.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small, fast, seedable RNG (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Slice sampling helpers.
pub mod seq {
    use super::RngCore;

    /// Subset of `rand::seq::SliceRandom` used by the workspace.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        /// Uniformly pick one element (None on empty).
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}
