//! Offline no-op `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! Emits an empty impl of the corresponding marker trait from the vendored
//! `serde` stub. Written against `proc_macro` directly (no `syn`/`quote`,
//! which are unavailable offline); supports plain and generic structs/enums.

use proc_macro::{TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    derive_marker(input, "Serialize")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    derive_marker(input, "Deserialize")
}

/// Extract `(name, generic_params)` from a `struct`/`enum`/`union` item and
/// emit `impl<params> serde::Trait for Name<args> {}`.
fn derive_marker(input: TokenStream, trait_name: &str) -> TokenStream {
    let mut tokens = input.into_iter().peekable();

    // Skip attributes / visibility until the item keyword, then grab the name.
    let mut name = None;
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                match tokens.next() {
                    Some(TokenTree::Ident(n)) => {
                        name = Some(n.to_string());
                        break;
                    }
                    _ => panic!("derive({trait_name}): expected a type name after `{kw}`"),
                }
            }
        }
    }
    let name = name.unwrap_or_else(|| panic!("derive({trait_name}): no struct/enum found"));

    // Collect raw generic parameter tokens between the outermost `<` … `>`.
    let mut params = String::new();
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        tokens.next();
        let mut depth = 1usize;
        for tt in tokens.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            }
            params.push_str(&tt.to_string());
            params.push(' ');
        }
    }

    let impl_block = if params.is_empty() {
        format!("impl serde::{trait_name} for {name} {{}}")
    } else {
        // Strip defaults (`T = Foo`) and bounds are kept as-is; for the
        // argument list keep only the parameter names/lifetimes.
        let args = generic_args(&params);
        format!("impl<{params}> serde::{trait_name} for {name}<{args}> {{}}")
    };
    impl_block
        .parse()
        .expect("derive: generated impl must parse")
}

/// Reduce a generic *parameter* list (`'a, T: Clone, const N: usize`) to the
/// matching *argument* list (`'a, T, N`).
fn generic_args(params: &str) -> String {
    let mut args = Vec::new();
    for part in split_top_level_commas(params) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let head = part.split([':', '=']).next().unwrap_or(part).trim();
        let head = head.strip_prefix("const").unwrap_or(head).trim();
        args.push(head.to_string());
    }
    args.join(", ")
}

/// Split on commas that are not nested inside `<…>` or `(…)`.
fn split_top_level_commas(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut depth = 0isize;
    for c in s.chars() {
        match c {
            '<' | '(' | '[' => depth += 1,
            '>' | ')' | ']' => depth -= 1,
            ',' if depth == 0 => {
                out.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        cur.push(c);
    }
    out.push(cur);
    out
}
