//! Umbrella crate for the GhostDB reproduction workspace.
//!
//! This package only hosts the runnable [examples](../examples) and the
//! cross-crate integration tests (`tests/`). The library surface users should
//! depend on is [`ghostdb_core`]; it is re-exported here for convenience so
//! examples can write `use ghostdb_repro::prelude::*;`.

pub use ghostdb_core as core;

/// Convenience re-exports for examples and integration tests.
pub mod prelude {
    pub use ghostdb_core::{
        GhostDb, GhostDbConfig, QueryOptions, SealedGhostDb, ServeConfig, Strategy,
    };
}
