//! Quickstart: the paper's §2.1 patient example, end to end.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Declares a table with `HIDDEN` columns, loads it (visible columns go to
//! the untrusted PC, hidden columns onto the simulated secure USB key),
//! runs a query mixing both sides, and audits the wire.

use ghostdb_core::{GhostDb, GhostDbConfig};
use ghostdb_storage::Value;

fn main() {
    let mut db = GhostDb::new(GhostDbConfig {
        capture_channel: true,
        ..Default::default()
    });

    // §2.1, verbatim apart from widths: name and body-mass index are
    // sensitive; id, age and city are public.
    db.execute(
        "CREATE TABLE Patients (id INT, name CHAR(200) HIDDEN, age INT, \
         city CHAR(100), bodymassindex FLOAT HIDDEN)",
    )
    .expect("DDL");

    let names = [
        "Alice", "Bob", "Carol", "Dan", "Eve", "Frank", "Grace", "Heidi",
    ];
    db.insert_rows(
        "Patients",
        names
            .iter()
            .enumerate()
            .map(|(i, n)| {
                vec![
                    Value::Str((*n).into()),
                    Value::Int(40 + (i as i64 % 3) * 5), // ages 40/45/50
                    Value::Str(if i % 2 == 0 { "Paris" } else { "Oslo" }.into()),
                    Value::Float(21.0 + i as f64 * 1.5),
                ]
            })
            .collect(),
    )
    .expect("load");

    // The paper's §2.2 example: a selection mixing a visible attribute
    // (age) with a hidden one (bodymassindex).
    let sql = "SELECT Patients.name, Patients.age, Patients.bodymassindex \
               FROM Patients WHERE Patients.age = 50 AND Patients.bodymassindex > 23";
    // Burn the key: from here on the catalog is immutable and the sealed
    // handle serves queries through `&self`.
    let sealed = db.finalize().expect("finalize");
    println!("query: {sql}\n");
    println!("{}", sealed.explain(sql).expect("explain"));
    let result = sealed.query(sql).expect("query");
    println!("{result}\n");

    // What did a wire snooper see? Only the query and visible data flowing
    // *into* the key — never a name or a BMI.
    let audit = sealed.audit().expect("audit");
    println!("{audit}");
    assert!(audit.ok, "leak audit must pass");
}
