//! The paper's motivating healthcare scenario (§6.2) at a reduced scale:
//! a diabetes-study database where foreign keys and identifying attributes
//! are hidden on the token, clinical readings stay public.
//!
//! ```text
//! cargo run --release --example medical_study
//! ```

use ghostdb_core::{GhostDb, QueryOptions, Strategy};
use ghostdb_datagen::MedicalDataset;
use ghostdb_exec::{ExecOptions, Executor};

fn main() {
    // 1% of paper scale: 13 000 measurements, 140 patients, 45 doctors.
    let dataset = MedicalDataset::generate(0.01, 42);
    let (m, p, d, dr) = dataset.cardinalities();
    println!("medical dataset: Measurements={m} Patients={p} Doctors={d} Drugs={dr}");
    let mut database = dataset.build().expect("build");

    // The §3 example query shape: which measurements belong to patients of
    // a given (hidden-name) doctor, restricted by a visible patient
    // attribute? Executed with the optimizer's strategy choice.
    let query = ghostdb_bench_free_query(&dataset, &database);
    let (rows, report) = Executor::run(&mut database, &query, &ExecOptions::auto()).expect("query");
    println!(
        "\n{} result rows; simulated time {} (flash {}, wire {}), {} B shipped to the token",
        rows.len(),
        report.total(),
        report.flash_total(),
        report.comm,
        report.bytes_to_secure,
    );
    for row in rows.rows.iter().take(5) {
        println!(
            "  measurement {} → patient {} (first name {})",
            row[0], row[1], row[3]
        );
    }

    // The same study through the SQL facade, with a pinned strategy.
    let mut sql_db = GhostDb::from_database(dataset.build().expect("rebuild"));
    let (rs, rep) = sql_db
        .finalize()
        .expect("finalize")
        .query_with(
            "SELECT Measurements.id, Patients.first_name FROM Measurements, Patients, Doctors \
             WHERE Measurements.patient_id = Patients.id AND Patients.doctor_id = Doctors.id \
             AND Patients.first_name < '00000014' AND Doctors.name < '00000005'",
            &QueryOptions::new().strategy(Strategy::CrossPre),
        )
        .expect("sql query");
    println!(
        "\nSQL facade, Cross-Pre-Filter: {} rows in {} simulated",
        rs.len(),
        rep.total()
    );
}

/// Figure 16's query: visible selection on Patients (20%), hidden selection
/// on Doctors (10%).
fn ghostdb_bench_free_query(
    dataset: &MedicalDataset,
    db: &ghostdb_exec::Database,
) -> ghostdb_exec::SpjQuery {
    let m = db.schema.table_id("Measurements").expect("m");
    let p = db.schema.table_id("Patients").expect("p");
    let d = db.schema.table_id("Doctors").expect("d");
    let mut q = ghostdb_exec::SpjQuery::new()
        .pred(p, dataset.visible_pred(0.2))
        .pred(d, dataset.hidden_pred(0.1))
        .project(m, "id")
        .project(p, "id")
        .project(d, "id")
        .project(p, "first_name");
    q.text = "SELECT M.id, P.id, D.id, P.first_name FROM ... (figure 16 query)".into();
    q
}
