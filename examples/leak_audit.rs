//! The security argument, demonstrated: a wire snooper's view of a GhostDB
//! session is a **function of the query and the visible data alone** — it
//! does not depend on hidden values at all.
//!
//! We build two databases whose *visible* partitions are identical but
//! whose *hidden* values differ completely, run the same query on both,
//! and compare the transcripts byte for byte.
//!
//! ```text
//! cargo run --example leak_audit
//! ```

use ghostdb_core::{audit_transcript, GhostDb, GhostDbConfig};
use ghostdb_storage::Value;

fn build(hidden_offset: i64) -> GhostDb {
    let mut db = GhostDb::new(GhostDbConfig {
        capture_channel: true,
        ..Default::default()
    });
    db.execute(
        "CREATE TABLE Accounts (id INT, branch CHAR(10), balance INT HIDDEN, \
         owner CHAR(20) HIDDEN)",
    )
    .expect("DDL");
    db.insert_rows(
        "Accounts",
        (0..64)
            .map(|i| {
                vec![
                    Value::Str(format!("BR{:02}", i % 8)),
                    // Hidden values differ entirely between the two worlds.
                    Value::Int(1_000 + hidden_offset + i * 13),
                    Value::Str(format!("owner-{}-{hidden_offset}", i)),
                ]
            })
            .collect(),
    )
    .expect("load");
    db
}

fn main() {
    let sql = "SELECT Accounts.owner, Accounts.balance FROM Accounts \
               WHERE Accounts.branch = 'BR03' AND Accounts.balance > 1300";

    let mut world_a = build(0);
    let mut world_b = build(500_000);
    let rows_a = world_a.query(sql).expect("query A");
    let rows_b = world_b.query(sql).expect("query B");
    println!(
        "world A: {} result rows; world B: {} result rows",
        rows_a.len(),
        rows_b.len()
    );

    let trace_a: Vec<(String, u64, Option<Vec<u8>>)> = world_a
        .database()
        .expect("loaded")
        .token
        .channel
        .transcript()
        .iter()
        .map(|e| (e.tag.clone(), e.bytes, e.payload.clone()))
        .collect();
    let trace_b: Vec<(String, u64, Option<Vec<u8>>)> = world_b
        .database()
        .expect("loaded")
        .token
        .channel
        .transcript()
        .iter()
        .map(|e| (e.tag.clone(), e.bytes, e.payload.clone()))
        .collect();

    println!("\nsnooper's view (world A):");
    println!(
        "{}",
        audit_transcript(
            world_a
                .database()
                .expect("loaded")
                .token
                .channel
                .transcript()
        )
    );

    assert_eq!(trace_a, trace_b, "transcripts must be bit-identical");
    println!(
        "Transcripts of the two worlds are BIT-IDENTICAL ({} flows).",
        trace_a.len()
    );
    println!("Different hidden balances, different owners, different result");
    println!("cardinalities — indistinguishable on the wire. That is the GhostDB");
    println!("guarantee: the snooper learns the query and the visible data, nothing else.");
}
