//! The security argument, demonstrated and enforced: a wire snooper's (and
//! the untrusted PC's) view of a GhostDB session is a **function of the
//! query and the visible data alone** — it does not depend on hidden
//! values at all. With `--padded`-style volume padding on, even the exact
//! visible-selection volume is quantised to a power-of-two bucket.
//!
//! We build two databases whose *visible* partitions are identical but
//! whose *hidden* values differ completely, run the same query on both,
//! and compare the channel transcripts byte for byte and the host traces
//! event for event. Any divergence exits non-zero — CI runs this binary as
//! a leak gate (see `SECURITY.md`).
//!
//! ```text
//! cargo run --example leak_audit
//! ```

use ghostdb_core::{audit_transcript, GhostDb, GhostDbConfig, QueryOptions};
use ghostdb_storage::Value;

fn build(hidden_offset: i64) -> GhostDb {
    let mut db = GhostDb::new(GhostDbConfig {
        capture_channel: true,
        ..Default::default()
    });
    db.execute(
        "CREATE TABLE Accounts (id INT, branch CHAR(10), balance INT HIDDEN, \
         owner CHAR(20) HIDDEN)",
    )
    .expect("DDL");
    db.insert_rows(
        "Accounts",
        (0..64)
            .map(|i| {
                vec![
                    Value::Str(format!("BR{:02}", i % 8)),
                    // Hidden values differ entirely between the two worlds.
                    Value::Int(1_000 + hidden_offset + i * 13),
                    Value::Str(format!("owner-{}-{hidden_offset}", i)),
                ]
            })
            .collect(),
    )
    .expect("load");
    db
}

/// One channel flow as the snooper sees it: tag, wire bytes, payload.
type Flow = (String, u64, Option<Vec<u8>>);

/// Snapshot of everything an observer sees: every channel flow with its
/// payload, plus the host-side request trace.
fn observer_view(db: &GhostDb) -> (Vec<Flow>, String) {
    let wire: Vec<Flow> = db
        .database()
        .expect("loaded")
        .token
        .channel
        .transcript()
        .iter()
        .map(|e| (e.tag.clone(), e.bytes, e.payload.clone()))
        .collect();
    let host = db.host_trace().expect("loaded").to_string();
    (wire, host)
}

fn fail(msg: &str) -> ! {
    eprintln!("leak_audit: LEAK DETECTED — {msg}");
    std::process::exit(1);
}

/// Run `sql` on both worlds and demand indistinguishable observations.
fn run_pair(sql: &str, opts: &QueryOptions, label: &str) -> (usize, usize, String) {
    let mut world_a = build(0);
    let mut world_b = build(500_000);
    let rows_a = world_a
        .finalize()
        .expect("finalize A")
        .query_with(sql, opts)
        .expect("query A")
        .0;
    let rows_b = world_b
        .finalize()
        .expect("finalize B")
        .query_with(sql, opts)
        .expect("query B")
        .0;

    let (wire_a, host_a) = observer_view(&world_a);
    let (wire_b, host_b) = observer_view(&world_b);
    if wire_a != wire_b {
        fail(&format!(
            "{label}: channel transcripts differ between worlds"
        ));
    }
    if host_a != host_b {
        fail(&format!("{label}: host traces differ between worlds"));
    }
    let audit = world_a.audit().expect("audit");
    if !audit.ok {
        fail(&format!(
            "{label}: transcript auditor rejected the session:\n{audit}"
        ));
    }
    (rows_a.rows.len(), rows_b.rows.len(), host_a)
}

fn main() {
    let sql = "SELECT Accounts.owner, Accounts.balance FROM Accounts \
               WHERE Accounts.branch = 'BR03' AND Accounts.balance > 1300";

    // ---- Exact (unpadded) mode -----------------------------------------
    let (n_a, n_b, host) = run_pair(sql, &QueryOptions::default(), "exact");
    println!("world A: {n_a} result rows; world B: {n_b} result rows");
    println!("\nhost-observable trace (identical in both worlds):\n{host}");

    {
        // The snooper's formatted view, for the demo.
        let mut world_a = build(0);
        world_a
            .finalize()
            .expect("finalize")
            .query(sql)
            .expect("query A");
        println!("snooper's view (world A):");
        println!(
            "{}",
            audit_transcript(
                world_a
                    .database()
                    .expect("loaded")
                    .token
                    .channel
                    .transcript()
            )
        );
    }
    println!("Exact mode: transcripts and host traces of the two worlds are");
    println!("indistinguishable. Different hidden balances, different owners,");
    println!("different result cardinalities — same wire, same host view.");

    // ---- Padded mode ----------------------------------------------------
    let padded = QueryOptions::new().padded(true);
    let (_, _, _host_padded) = run_pair(sql, &padded, "padded");
    // Padding engages on the Vis shipment volumes: the trace records
    // post-padding bytes, the transcript records the .padN tag.
    let mut w = build(0);
    w.finalize()
        .expect("finalize")
        .query_with(sql, &padded)
        .expect("padded query");
    let tagged = w
        .database()
        .expect("loaded")
        .token
        .channel
        .transcript()
        .iter()
        .any(|e| e.tag.contains(".pad"));
    if !tagged {
        fail("padded: no .pad tag on any Vis shipment");
    }
    println!("\nPadded mode: same indistinguishability, and every Vis shipment");
    println!("is rounded up to a power-of-two row bucket — a snooper timing the");
    println!("wire learns only the bucket, not the exact visible volume.");
    println!("\nleak_audit: PASS");
}
