//! Bob the traveling salesman (paper §1): corporate data on an untrusted
//! customer PC. The public product catalog is visible; customer identities,
//! negotiated discounts and the order links between them live only on
//! Bob's USB key.
//!
//! ```text
//! cargo run --example traveling_salesman
//! ```

use ghostdb_core::{GhostDb, GhostDbConfig};
use ghostdb_storage::Value;

fn main() {
    let mut db = GhostDb::new(GhostDbConfig {
        capture_channel: true,
        ..Default::default()
    });

    // Public product catalog.
    db.execute(
        "CREATE TABLE Products (id INT, label CHAR(30), list_price INT, \
         spec_sheet CHAR(60) HIDDEN)",
    )
    .expect("DDL Products");
    // Customers: identity hidden.
    db.execute(
        "CREATE TABLE Customers (id INT, region CHAR(12), name CHAR(30) HIDDEN, \
         discount_pct INT HIDDEN)",
    )
    .expect("DDL Customers");
    // Orders: the links are the sensitive part — both foreign keys hidden
    // (the §2.1 design guideline).
    db.execute(
        "CREATE TABLE Orders (id INT, \
         customer_id INT HIDDEN REFERENCES Customers, \
         product_id INT HIDDEN REFERENCES Products, \
         quarter CHAR(6), quantity INT)",
    )
    .expect("DDL Orders");

    db.insert_rows(
        "Products",
        vec![
            vec![
                Value::Str("Turbine blade".into()),
                Value::Int(1200),
                Value::Str("alloy spec A7".into()),
            ],
            vec![
                Value::Str("Control unit".into()),
                Value::Int(800),
                Value::Str("firmware rev 9".into()),
            ],
            vec![
                Value::Str("Gearbox".into()),
                Value::Int(2500),
                Value::Str("ratio 1:7.3".into()),
            ],
        ],
    )
    .expect("load products");
    db.insert_rows(
        "Customers",
        vec![
            vec![
                Value::Str("north".into()),
                Value::Str("Aurora Industries".into()),
                Value::Int(12),
            ],
            vec![
                Value::Str("north".into()),
                Value::Str("Borealis Ltd".into()),
                Value::Int(7),
            ],
            vec![
                Value::Str("south".into()),
                Value::Str("Cumulus GmbH".into()),
                Value::Int(15),
            ],
        ],
    )
    .expect("load customers");
    let orders: Vec<Vec<Value>> = (0..24)
        .map(|i| {
            vec![
                Value::Int(i % 3),       // customer
                Value::Int((i * 7) % 3), // product
                Value::Str(format!("2026Q{}", i % 4 + 1)),
                Value::Int(1 + i % 5),
            ]
        })
        .collect();
    db.insert_rows("Orders", orders).expect("load orders");

    // On the customer's PC, Bob asks: which Q1 orders involve customers
    // with a discount above 10% — and what did we promise them?
    let sql = "SELECT Orders.id, Customers.name, Customers.discount_pct, Products.label \
               FROM Orders, Customers, Products \
               WHERE Orders.customer_id = Customers.id AND Orders.product_id = Products.id \
               AND Orders.quarter = '2026Q1' AND Customers.discount_pct > 10";
    println!("query: {sql}\n");
    let sealed = db.finalize().expect("finalize");
    let result = sealed.query(sql).expect("query");
    println!("{result}\n");

    let audit = sealed.audit().expect("audit");
    println!("{audit}");
    assert!(audit.ok);
    println!("Customer names and discounts were combined with the public catalog —");
    println!("yet only visible columns (quarter, catalog rows) ever crossed the wire.");
}
